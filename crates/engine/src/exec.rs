//! Query execution.
//!
//! Pipeline: FROM → JOINs (hash join on equi-conjuncts, nested loop
//! otherwise) → WHERE → GROUP BY/aggregate → HAVING → project →
//! DISTINCT → ORDER BY → LIMIT. Sub-queries execute through
//! [`EvalCtx::subquery`], which caches uncorrelated results.

use std::cell::RefCell;
use std::collections::HashMap;

use nlidb_sqlir::ast::{BinOp, ColumnRef, Expr, Join, JoinKind, Query, SelectItem, TableSource};

use crate::catalog::Database;
use crate::error::EngineError;
use crate::eval::{eval, eval_grouped, EvalCtx, RelSchema, Scope};
use crate::value::Value;

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Comparison key for one value: like [`Value::group_key`] but
    /// tolerant to floating-point summation-order noise (floats are
    /// rounded to 9 significant digits). Integers beyond 2⁵³ — where
    /// the rounded-float form would fold distinct values together —
    /// keep their exact decimal form instead; integral floats in that
    /// range take the same form so Int/Float unification survives.
    fn result_key(v: &Value) -> String {
        const EXACT_F64: f64 = 9_007_199_254_740_992.0; // 2⁵³
        match v {
            Value::Int(i) => {
                if i.unsigned_abs() > 1u64 << 53 {
                    format!("\u{2}{i}")
                } else {
                    format!("\u{2}{:.9e}", *i as f64)
                }
            }
            Value::Float(f) => {
                // Every f64 with |f| > 2⁵³ is integral already.
                if f.abs() > EXACT_F64 && crate::value::in_i64_range(*f) {
                    format!("\u{2}{}", *f as i64)
                } else {
                    format!("\u{2}{:.9e}", f)
                }
            }
            other => other.group_key(),
        }
    }

    /// Bag-equality (order-insensitive), the execution-accuracy notion
    /// used when the gold query has no ORDER BY. Rows key as vectors of
    /// per-value strings — never joined into one string, which would
    /// let a U+001F inside a value shift the key boundary.
    pub fn unordered_eq(&self, other: &ResultSet) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let key = |rows: &[Vec<Value>]| -> Vec<Vec<String>> {
            let mut keys: Vec<Vec<String>> = rows
                .iter()
                .map(|r| r.iter().map(Self::result_key).collect())
                .collect();
            keys.sort_unstable();
            keys
        };
        key(&self.rows) == key(&other.rows)
    }

    /// Sequence equality (order-sensitive), used when the gold query
    /// specifies ORDER BY.
    pub fn ordered_eq(&self, other: &ResultSet) -> bool {
        self.rows.len() == other.rows.len()
            && self.rows.iter().zip(&other.rows).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| Self::result_key(x) == Self::result_key(y))
            })
    }
}

/// Deterministic logical-work statistics for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Logical ticks charged: one per row-wise operator application,
    /// `1 + n/64` per vectorized column operation (batch engine).
    pub ticks: u64,
}

/// Execute `query` against `db` with the row-at-a-time reference
/// engine. The default [`crate::execute`] entry point runs the batch
/// engine; this one is kept as the semantics oracle (E18 asserts both
/// agree over the full corpus).
pub fn execute_rowwise(db: &Database, query: &Query) -> Result<ResultSet, EngineError> {
    execute_rowwise_with_stats(db, query).map(|(rs, _)| rs)
}

/// Row engine entry point that also reports logical tick counts.
pub fn execute_rowwise_with_stats(
    db: &Database,
    query: &Query,
) -> Result<(ResultSet, ExecStats), EngineError> {
    let ctx = EvalCtx {
        db,
        sub_cache: RefCell::new(HashMap::new()),
        exec: exec_entry,
        ticks: std::cell::Cell::new(0),
    };
    let rs = exec_query(&ctx, query, None)?;
    Ok((
        rs,
        ExecStats {
            ticks: ctx.ticks.get(),
        },
    ))
}

fn exec_entry(
    ctx: &EvalCtx<'_>,
    q: &Query,
    scope: Option<&Scope<'_>>,
) -> Result<ResultSet, EngineError> {
    exec_query(ctx, q, scope)
}

/// Materialized intermediate relation.
struct Relation {
    schema: RelSchema,
    rows: Vec<Vec<Value>>,
}

fn relation_of(
    ctx: &EvalCtx<'_>,
    source: &TableSource,
    _outer: Option<&Scope<'_>>,
) -> Result<Relation, EngineError> {
    match source {
        TableSource::Table { name, alias } => {
            let table = ctx.db.table(name)?;
            ctx.charge(table.rows.len() as u64); // scan
            let mut schema = RelSchema::new();
            schema.push_binding(
                alias.clone().unwrap_or_else(|| name.clone()),
                table
                    .schema
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
            );
            Ok(Relation {
                schema,
                rows: table.rows.clone(),
            })
        }
        TableSource::Subquery { query, alias } => {
            // Derived tables are uncorrelated by SQL scoping rules.
            let rs = exec_query(ctx, query, None)?;
            let mut schema = RelSchema::new();
            schema.push_binding(alias.clone(), rs.columns);
            Ok(Relation {
                schema,
                rows: rs.rows,
            })
        }
    }
}

/// Split an ON condition into equi-join pairs (left index, right index)
/// plus residual conjuncts. Returns `None` for the pairs when no
/// equi-conjunct is found.
pub(crate) fn split_equi(
    on: &Expr,
    left: &RelSchema,
    right: &RelSchema,
    conjuncts: &mut Vec<Expr>,
    pairs: &mut Vec<(usize, usize)>,
) {
    if let Expr::Binary {
        left: l,
        op: BinOp::And,
        right: r,
    } = on
    {
        split_equi(l, left, right, conjuncts, pairs);
        split_equi(r, left, right, conjuncts, pairs);
        return;
    }
    if let Expr::Binary {
        left: l,
        op: BinOp::Eq,
        right: r,
    } = on
    {
        if let (Expr::Column(a), Expr::Column(b)) = (l.as_ref(), r.as_ref()) {
            let try_pair = |x: &ColumnRef, y: &ColumnRef| -> Option<(usize, usize)> {
                let li = left.resolve(x).ok().flatten()?;
                let ri = right.resolve(y).ok().flatten()?;
                Some((li, ri))
            };
            if let Some(p) = try_pair(a, b).or_else(|| try_pair(b, a)) {
                pairs.push(p);
                return;
            }
        }
    }
    conjuncts.push(on.clone());
}

fn do_join(
    ctx: &EvalCtx<'_>,
    left: Relation,
    join: &Join,
    outer: Option<&Scope<'_>>,
) -> Result<Relation, EngineError> {
    let right = relation_of(ctx, &join.source, outer)?;
    let mut combined = left.schema.clone();
    for (name, cols, _) in &right.schema.bindings {
        combined.push_binding(name.clone(), cols.clone());
    }
    let right_width = right.schema.width();

    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    split_equi(
        &join.on,
        &left.schema,
        &right.schema,
        &mut residual,
        &mut pairs,
    );

    let residual_ok = |row: &[Value]| -> Result<bool, EngineError> {
        let scope = Scope {
            schema: &combined,
            row,
            parent: outer,
        };
        for c in &residual {
            if !eval(ctx, c, &scope)?.is_true() {
                return Ok(false);
            }
        }
        Ok(true)
    };

    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    if !pairs.is_empty() {
        // Hash join: build on the right side. Composite keys stay
        // `Vec<String>` — joining per-column `group_key`s with a
        // separator would let a separator byte *inside* a value shift
        // the key boundary (`("a\u{1f}", "b")` vs `("a", "\u{1f}b")`)
        // and fabricate equi-join matches.
        ctx.charge((left.rows.len() + right.rows.len()) as u64); // build + probe
        let mut table: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
        for (ri, rrow) in right.rows.iter().enumerate() {
            // NULL keys never match in SQL equi-joins.
            if pairs.iter().any(|(_, r)| rrow[*r].is_null()) {
                continue;
            }
            let key: Vec<String> = pairs.iter().map(|(_, r)| rrow[*r].group_key()).collect();
            table.entry(key).or_default().push(ri);
        }
        for lrow in &left.rows {
            let null_key = pairs.iter().any(|(l, _)| lrow[*l].is_null());
            let key: Vec<String> = pairs.iter().map(|(l, _)| lrow[*l].group_key()).collect();
            let mut matched = false;
            if !null_key {
                if let Some(ris) = table.get(&key) {
                    for &ri in ris {
                        let mut row = Vec::with_capacity(lrow.len() + right_width);
                        row.extend(lrow.iter().cloned());
                        row.extend(right.rows[ri].iter().cloned());
                        if residual_ok(&row)? {
                            matched = true;
                            out_rows.push(row);
                        }
                    }
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let mut row = Vec::with_capacity(lrow.len() + right_width);
                row.extend(lrow.iter().cloned());
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out_rows.push(row);
            }
        }
    } else {
        // Theta join: nested loop.
        ctx.charge((left.rows.len() * right.rows.len().max(1)) as u64);
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let mut row = Vec::with_capacity(lrow.len() + right_width);
                row.extend(lrow.iter().cloned());
                row.extend(rrow.iter().cloned());
                if residual_ok(&row)? {
                    matched = true;
                    out_rows.push(row);
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let mut row = Vec::with_capacity(lrow.len() + right_width);
                row.extend(lrow.iter().cloned());
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out_rows.push(row);
            }
        }
    }
    ctx.charge(out_rows.len() as u64); // row materialization
    Ok(Relation {
        schema: combined,
        rows: out_rows,
    })
}

/// Output column name for a select item.
pub(crate) fn item_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => a.clone(),
            None => match expr {
                Expr::Column(c) => c.column.clone(),
                other => other.to_string(),
            },
        },
    }
}

fn exec_query(
    ctx: &EvalCtx<'_>,
    q: &Query,
    outer: Option<&Scope<'_>>,
) -> Result<ResultSet, EngineError> {
    // FROM + JOINs.
    let mut rel = match &q.from {
        Some(src) => relation_of(ctx, src, outer)?,
        None => Relation {
            schema: RelSchema::new(),
            rows: vec![Vec::new()],
        },
    };
    for join in &q.joins {
        rel = do_join(ctx, rel, join, outer)?;
    }

    // WHERE.
    if let Some(pred) = &q.where_clause {
        let mut kept = Vec::with_capacity(rel.rows.len());
        for row in rel.rows {
            let scope = Scope {
                schema: &rel.schema,
                row: &row,
                parent: outer,
            };
            if eval(ctx, pred, &scope)?.is_true() {
                kept.push(row);
            }
        }
        rel.rows = kept;
    }

    // Output column names.
    let mut columns: Vec<String> = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Wildcard => columns.extend(rel.schema.display_names()),
            _ => columns.push(item_name(item)),
        }
    }

    // Sort-key plan: an ORDER BY expression that is a bare column
    // matching a select alias/name sorts by the projected value.
    let alias_index = |e: &Expr| -> Option<usize> {
        if let Expr::Column(ColumnRef {
            table: None,
            column,
        }) = e
        {
            // Only when the projection is all simple items (no wildcard
            // offsetting issues).
            if q.select.iter().all(|s| !matches!(s, SelectItem::Wildcard)) {
                return q.select.iter().position(|s| item_name(s) == *column).filter(|_| {
                    // Prefer relation columns if the name also resolves there
                    // and is not an explicit alias.
                    !matches!(
                        (rel.schema.resolve(&ColumnRef::bare(column)), q.select.iter().any(|s| matches!(s, SelectItem::Expr { alias: Some(a), .. } if a == column))),
                        (Ok(Some(_)), false)
                    )
                });
            }
        }
        None
    };

    // (projected row, sort keys)
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();

    if q.has_aggregation() {
        // Group rows.
        let mut groups: Vec<Vec<&Vec<Value>>> = Vec::new();
        if q.group_by.is_empty() {
            groups.push(rel.rows.iter().collect());
        } else {
            // Composite grouping keys stay `Vec<String>` for the same
            // boundary-shift reason as hash-join keys.
            let mut index: HashMap<Vec<String>, usize> = HashMap::new();
            for row in &rel.rows {
                let scope = Scope {
                    schema: &rel.schema,
                    row,
                    parent: outer,
                };
                let mut key = Vec::with_capacity(q.group_by.len());
                for g in &q.group_by {
                    key.push(eval(ctx, g, &scope)?.group_key());
                }
                match index.get(&key) {
                    Some(&i) => groups[i].push(row),
                    None => {
                        index.insert(key, groups.len());
                        groups.push(vec![row]);
                    }
                }
            }
        }
        for group in &groups {
            if let Some(h) = &q.having {
                if !eval_grouped(ctx, h, &rel.schema, group, outer)?.is_true() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(q.select.len());
            for item in &q.select {
                match item {
                    SelectItem::Wildcard => match group.first() {
                        Some(row) => out.extend(row.iter().cloned()),
                        None => {
                            out.extend(std::iter::repeat_n(Value::Null, rel.schema.width()));
                        }
                    },
                    SelectItem::Expr { expr, .. } => {
                        out.push(eval_grouped(ctx, expr, &rel.schema, group, outer)?);
                    }
                }
            }
            let mut keys = Vec::with_capacity(q.order_by.len());
            for ob in &q.order_by {
                match alias_index(&ob.expr) {
                    Some(i) => keys.push(out[i].clone()),
                    None => keys.push(eval_grouped(ctx, &ob.expr, &rel.schema, group, outer)?),
                }
            }
            produced.push((out, keys));
        }
    } else {
        for row in &rel.rows {
            let scope = Scope {
                schema: &rel.schema,
                row,
                parent: outer,
            };
            let mut out = Vec::with_capacity(q.select.len());
            for item in &q.select {
                match item {
                    SelectItem::Wildcard => out.extend(row.iter().cloned()),
                    SelectItem::Expr { expr, .. } => out.push(eval(ctx, expr, &scope)?),
                }
            }
            let mut keys = Vec::with_capacity(q.order_by.len());
            for ob in &q.order_by {
                match alias_index(&ob.expr) {
                    Some(i) => keys.push(out[i].clone()),
                    None => keys.push(eval(ctx, &ob.expr, &scope)?),
                }
            }
            produced.push((out, keys));
        }
    }

    // DISTINCT — row keys as `Vec<String>`, never joined.
    if q.distinct {
        ctx.charge(produced.len() as u64);
        let mut seen: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();
        produced.retain(|(row, _)| {
            let key: Vec<String> = row.iter().map(Value::group_key).collect();
            seen.insert(key)
        });
    }

    // ORDER BY (stable).
    if !q.order_by.is_empty() {
        ctx.charge(produced.len() as u64);
        let dirs: Vec<bool> = q.order_by.iter().map(|o| o.asc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb).zip(&dirs) {
                let ord = a.sort_cmp(b);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // LIMIT.
    let mut rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(l) = q.limit {
        rows.truncate(l as usize);
    }
    Ok(ResultSet { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnType, TableSchema};
    use nlidb_sqlir::parse_query;

    fn db() -> Database {
        let mut db = Database::new("t");
        db.create_table(
            TableSchema::new("people")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("age", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        let rows = [
            (1, "ann", 34, "austin"),
            (2, "bob", 28, "boston"),
            (3, "cat", 45, "austin"),
            (4, "dan", 28, "chicago"),
        ];
        for (id, n, a, c) in rows {
            db.insert(
                "people",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::Int(a),
                    Value::from(c),
                ],
            )
            .unwrap();
        }
        db
    }

    /// Run through BOTH engines and insist on byte-identical results —
    /// every unit test in this module doubles as a batch-vs-row
    /// equivalence check.
    fn run(db: &Database, sql: &str) -> ResultSet {
        let q = parse_query(sql).unwrap();
        let row = execute_rowwise(db, &q).unwrap();
        let batch = crate::batch::execute(db, &q).unwrap();
        assert_eq!(row, batch, "batch engine diverged from row engine: {sql}");
        row
    }

    #[test]
    fn select_star() {
        let rs = run(&db(), "SELECT * FROM people");
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.columns, vec!["id", "name", "age", "city"]);
    }

    #[test]
    fn where_filters() {
        let rs = run(&db(), "SELECT name FROM people WHERE age > 30");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let rs = run(&db(), "SELECT name FROM people ORDER BY age DESC LIMIT 2");
        assert_eq!(rs.rows[0][0], Value::from("cat"));
        assert_eq!(rs.rows[1][0], Value::from("ann"));
    }

    #[test]
    fn order_by_alias() {
        let rs = run(
            &db(),
            "SELECT city, COUNT(*) AS n FROM people GROUP BY city ORDER BY n DESC, city ASC",
        );
        assert_eq!(rs.rows[0][0], Value::from("austin"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn group_by_aggregates() {
        let rs = run(&db(), "SELECT city, AVG(age) FROM people GROUP BY city");
        assert_eq!(rs.rows.len(), 3);
        let austin = rs
            .rows
            .iter()
            .find(|r| r[0] == Value::from("austin"))
            .unwrap();
        assert_eq!(austin[1], Value::Float(39.5));
    }

    #[test]
    fn having_filters_groups() {
        let rs = run(
            &db(),
            "SELECT city FROM people GROUP BY city HAVING COUNT(*) > 1",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("austin"));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let rs = run(
            &db(),
            "SELECT COUNT(*), SUM(age) FROM people WHERE age > 100",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_no_rows() {
        let rs = run(
            &db(),
            "SELECT city, COUNT(*) FROM people WHERE age > 100 GROUP BY city",
        );
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn distinct_dedups() {
        let rs = run(&db(), "SELECT DISTINCT age FROM people");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn count_distinct() {
        let rs = run(&db(), "SELECT COUNT(DISTINCT age) FROM people");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn in_list_and_between() {
        let rs = run(
            &db(),
            "SELECT name FROM people WHERE city IN ('austin', 'boston')",
        );
        assert_eq!(rs.rows.len(), 3);
        let rs = run(&db(), "SELECT name FROM people WHERE age BETWEEN 28 AND 34");
        assert_eq!(rs.rows.len(), 3);
        let rs = run(
            &db(),
            "SELECT name FROM people WHERE age NOT BETWEEN 28 AND 34",
        );
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn like_filter() {
        let rs = run(&db(), "SELECT name FROM people WHERE name LIKE '%a%'");
        assert_eq!(rs.rows.len(), 3); // ann, cat, dan
    }

    #[test]
    fn arithmetic_projection() {
        let rs = run(&db(), "SELECT age * 2 FROM people WHERE id = 1");
        assert_eq!(rs.rows[0][0], Value::Int(68));
        let rs = run(&db(), "SELECT age / 0 FROM people WHERE id = 1");
        assert_eq!(rs.rows[0][0], Value::Null);
    }

    #[test]
    fn unordered_eq_semantics() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = ResultSet {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert!(a.unordered_eq(&b));
        assert!(!a.ordered_eq(&b));
        // Int/Float unify.
        let c = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(1.0)], vec![Value::Float(2.0)]],
        };
        assert!(a.unordered_eq(&c));
    }

    #[test]
    fn ambiguous_bare_column_errors() {
        let mut db = db();
        db.create_table(
            TableSchema::new("pets")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("owner_id", ColumnType::Int),
        )
        .unwrap();
        db.insert(
            "pets",
            vec![Value::Int(1), Value::from("rex"), Value::Int(1)],
        )
        .unwrap();
        let q =
            parse_query("SELECT name FROM people JOIN pets ON people.id = pets.owner_id").unwrap();
        assert!(matches!(
            execute_rowwise(&db, &q),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            crate::batch::execute(&db, &q),
            Err(EngineError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut db = db();
        db.create_table(
            TableSchema::new("pets")
                .column("pid", ColumnType::Int)
                .column("pet_name", ColumnType::Text)
                .column("owner_id", ColumnType::Int),
        )
        .unwrap();
        db.insert(
            "pets",
            vec![Value::Int(1), Value::from("rex"), Value::Int(1)],
        )
        .unwrap();
        let rs = run(
            &db,
            "SELECT people.name, pet_name FROM people \
             LEFT JOIN pets ON people.id = pets.owner_id ORDER BY people.id ASC",
        );
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.rows[0][1], Value::from("rex"));
        assert_eq!(rs.rows[1][1], Value::Null);
    }

    #[test]
    fn theta_join_nested_loop() {
        let rs = run(
            &db(),
            "SELECT a.name, b.name FROM people AS a JOIN people AS b ON a.age < b.age \
             WHERE a.id = 2",
        );
        // bob(28) < ann(34), cat(45) → 2 rows.
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn scalar_subquery_comparison() {
        let rs = run(
            &db(),
            "SELECT name FROM people WHERE age > (SELECT AVG(age) FROM people)",
        );
        // avg = 33.75 → ann(34), cat(45).
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn correlated_subquery() {
        let rs = run(
            &db(),
            "SELECT name FROM people AS p WHERE age = \
             (SELECT MAX(age) FROM people WHERE city = p.city)",
        );
        // Oldest per city: cat (austin), bob (boston), dan (chicago).
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn from_subquery() {
        let rs = run(
            &db(),
            "SELECT d.city FROM (SELECT city, COUNT(*) AS n FROM people GROUP BY city) AS d \
             WHERE d.n > 1",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("austin"));
    }

    #[test]
    fn not_in_with_nulls_filters_all() {
        let mut db = db();
        db.create_table(TableSchema::new("maybe").column("v", ColumnType::Int))
            .unwrap();
        db.insert("maybe", vec![Value::Int(1)]).unwrap();
        db.insert("maybe", vec![Value::Null]).unwrap();
        // NOT IN over a list containing NULL is never TRUE in SQL.
        let rs = run(
            &db,
            "SELECT name FROM people WHERE id NOT IN (SELECT v FROM maybe)",
        );
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn exists_and_not_exists() {
        let rs = run(
            &db(),
            "SELECT name FROM people AS p WHERE EXISTS \
             (SELECT * FROM people WHERE city = p.city AND id <> p.id)",
        );
        assert_eq!(rs.rows.len(), 2); // the two austinites
        let rs = run(
            &db(),
            "SELECT name FROM people AS p WHERE NOT EXISTS \
             (SELECT * FROM people WHERE city = p.city AND id <> p.id)",
        );
        assert_eq!(rs.rows.len(), 2); // bob + dan
    }

    /// Two-column tables whose values embed U+001F so the *joined*
    /// key strings of non-matching rows coincide: `("a\u{1f}", "b")`
    /// vs `("a", "\u{1f}b")`.
    fn unit_sep_db() -> Database {
        let mut db = Database::new("sep");
        db.create_table(
            TableSchema::new("l")
                .column("k1", ColumnType::Text)
                .column("k2", ColumnType::Text),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("r")
                .column("k1", ColumnType::Text)
                .column("k2", ColumnType::Text)
                .column("tag", ColumnType::Text),
        )
        .unwrap();
        db.insert("l", vec![Value::from("a\u{1f}"), Value::from("b")])
            .unwrap();
        db.insert(
            "r",
            vec![Value::from("a"), Value::from("\u{1f}b"), Value::from("x")],
        )
        .unwrap();
        db
    }

    #[test]
    fn join_keys_do_not_collide_across_boundaries() {
        // Regression: with `\u{1f}`-joined composite keys these two
        // rows hashed identically and the equi-join fabricated a match.
        let rs = run(
            &unit_sep_db(),
            "SELECT tag FROM l JOIN r ON l.k1 = r.k1 AND l.k2 = r.k2",
        );
        assert!(rs.rows.is_empty(), "false equi-join match on U+001F keys");
    }

    #[test]
    fn group_keys_do_not_collide_across_boundaries() {
        let mut db = unit_sep_db();
        db.insert("l", vec![Value::from("a"), Value::from("\u{1f}b")])
            .unwrap();
        // Two distinct (k1, k2) pairs whose joined keys coincide must
        // stay two groups / two distinct rows.
        let rs = run(&db, "SELECT k1, k2, COUNT(*) FROM l GROUP BY k1, k2");
        assert_eq!(rs.rows.len(), 2);
        let rs = run(&db, "SELECT DISTINCT k1, k2 FROM l");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn large_integers_group_and_join_exactly() {
        // 2⁵³ and 2⁵³+1 collapse to the same f64; the old key encoding
        // merged them in GROUP BY, DISTINCT, and equi-joins.
        let a = 1i64 << 53;
        let mut db = Database::new("big");
        db.create_table(TableSchema::new("t").column("v", ColumnType::Int))
            .unwrap();
        db.create_table(TableSchema::new("u").column("v", ColumnType::Int))
            .unwrap();
        for v in [a, a + 1] {
            db.insert("t", vec![Value::Int(v)]).unwrap();
        }
        db.insert("u", vec![Value::Int(a)]).unwrap();
        let rs = run(&db, "SELECT v, COUNT(*) FROM t GROUP BY v");
        assert_eq!(rs.rows.len(), 2, "large ints merged in GROUP BY");
        let rs = run(&db, "SELECT DISTINCT v FROM t");
        assert_eq!(rs.rows.len(), 2, "large ints merged in DISTINCT");
        let rs = run(&db, "SELECT t.v FROM t JOIN u ON t.v = u.v");
        assert_eq!(rs.rows.len(), 1, "equi-join matched 2^53+1 against 2^53");
        assert_eq!(rs.rows[0][0], Value::Int(a));
    }

    #[test]
    fn negative_zero_groups_with_zero() {
        let mut db = Database::new("z");
        db.create_table(TableSchema::new("t").column("v", ColumnType::Float))
            .unwrap();
        db.insert("t", vec![Value::Float(-0.0)]).unwrap();
        db.insert("t", vec![Value::Float(0.0)]).unwrap();
        db.insert("t", vec![Value::Int(0)]).unwrap();
        let rs = run(&db, "SELECT v, COUNT(*) FROM t GROUP BY v");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Int(3));
    }

    #[test]
    fn row_engine_reports_ticks() {
        let db = db();
        let q = parse_query("SELECT name FROM people WHERE age > 30").unwrap();
        let (_, stats) = execute_rowwise_with_stats(&db, &q).unwrap();
        // 4-row scan + per-row predicate evaluation + projection.
        assert!(stats.ticks > 4, "ticks should count scan + eval work");
        let (_, again) = execute_rowwise_with_stats(&db, &q).unwrap();
        assert_eq!(stats, again, "tick accounting must be deterministic");
    }

    #[test]
    fn uncorrelated_subquery_cached() {
        // Executing twice through the same ctx should hit the cache;
        // observable behaviourally: results are correct and stable.
        let rs = run(
            &db(),
            "SELECT name FROM people WHERE age > (SELECT MIN(age) FROM people) \
             AND age < (SELECT MAX(age) FROM people)",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("ann"));
    }
}
