//! Columnar (batch-vectorized) execution engine.
//!
//! The default [`execute`](crate::execute) entry point. Relations flow
//! through the pipeline as [`Batch`]es — one [`ColumnVec`] per column —
//! and predicates/projections evaluate column-at-a-time through
//! [`eval_columns`]. Hash joins and hash aggregation key on vectorized
//! per-column [`Value::group_key`] strings (held as `Vec<String>`,
//! never concatenated — see the U+001F boundary-collision bug fixed in
//! `exec.rs`).
//!
//! # Equivalence contract
//!
//! The batch engine is **row-identical** to the row-at-a-time reference
//! engine in `exec.rs`: joins emit in left-row probe order, groups form
//! in first-seen order, DISTINCT keeps first occurrences, and ORDER BY
//! uses the same stable sort. Experiment E18 asserts equivalence over
//! the full generated SQL corpus and byte-identical output across two
//! runs; the unit tests in `exec.rs` run every query through both
//! engines.
//!
//! # Cost model
//!
//! Work is charged in logical ticks on [`EvalCtx::ticks`]. A row-wise
//! operator application costs 1 tick (`eval` charges itself); a
//! vectorized column operation costs `1 + n / VECTOR_WIDTH` ticks,
//! modeling per-batch dispatch amortized over a 64-lane vector. Code
//! paths that cannot vectorize — sub-query-bearing expressions,
//! residual theta predicates, nested-loop joins — fall back to per-row
//! `eval` and pay the row rate. Ticks are deterministic (no wall-clock)
//! so they are comparable across engines and byte-reproducible.

use std::cell::RefCell;
use std::collections::HashMap;

use nlidb_sqlir::ast::{BinOp, ColumnRef, Expr, Join, JoinKind, Query, SelectItem, TableSource};

use crate::catalog::Database;
use crate::error::EngineError;
use crate::eval::{
    binary_op, eval, eval_grouped, literal_value, sql_like, EvalCtx, RelSchema, Scope,
};
use crate::exec::{item_name, split_equi, ExecStats, ResultSet};
use crate::value::Value;

/// Lanes per vector dispatch: one amortized tick covers 64 rows.
pub const VECTOR_WIDTH: u64 = 64;

/// One column of values.
pub type ColumnVec = Vec<Value>;

/// Tick cost of one vectorized operation over `n` rows.
pub(crate) fn vec_cost(n: usize) -> u64 {
    1 + n as u64 / VECTOR_WIDTH
}

/// A columnar relation: `width()` columns of equal length.
pub(crate) struct Batch {
    pub(crate) schema: RelSchema,
    pub(crate) columns: Vec<ColumnVec>,
    pub(crate) len: usize,
}

impl Batch {
    fn from_rows(schema: RelSchema, rows: &[Vec<Value>]) -> Self {
        let width = schema.width();
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                columns[c].push(v.clone());
            }
        }
        Batch {
            schema,
            columns,
            len: rows.len(),
        }
    }

    /// Gather row `i` (for per-row fallback scopes).
    fn row_at(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Gather the rows in `keep`, in order.
    fn select(&self, keep: &[usize], ctx: &EvalCtx<'_>) -> Batch {
        ctx.charge(self.columns.len() as u64 * vec_cost(keep.len()));
        Batch {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| keep.iter().map(|&i| c[i].clone()).collect())
                .collect(),
            len: keep.len(),
        }
    }
}

/// Execute `query` against `db` with the batch engine.
pub fn execute(db: &Database, query: &Query) -> Result<ResultSet, EngineError> {
    execute_with_stats(db, query).map(|(rs, _)| rs)
}

/// Batch engine entry point that also reports logical tick counts.
pub fn execute_with_stats(
    db: &Database,
    query: &Query,
) -> Result<(ResultSet, ExecStats), EngineError> {
    let ctx = EvalCtx {
        db,
        sub_cache: RefCell::new(HashMap::new()),
        exec: batch_entry,
        ticks: std::cell::Cell::new(0),
    };
    let rs = exec_batch(&ctx, query, None)?;
    Ok((
        rs,
        ExecStats {
            ticks: ctx.ticks.get(),
        },
    ))
}

fn batch_entry(
    ctx: &EvalCtx<'_>,
    q: &Query,
    scope: Option<&Scope<'_>>,
) -> Result<ResultSet, EngineError> {
    exec_batch(ctx, q, scope)
}

fn batch_of(
    ctx: &EvalCtx<'_>,
    source: &TableSource,
    _outer: Option<&Scope<'_>>,
) -> Result<Batch, EngineError> {
    match source {
        TableSource::Table { name, alias } => {
            let table = ctx.db.table(name)?;
            let mut schema = RelSchema::new();
            schema.push_binding(
                alias.clone().unwrap_or_else(|| name.clone()),
                table
                    .schema
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
            );
            // Columnar scan: one vectorized load per column.
            ctx.charge(schema.width() as u64 * vec_cost(table.rows.len()));
            Ok(Batch::from_rows(schema, &table.rows))
        }
        TableSource::Subquery { query, alias } => {
            // Derived tables are uncorrelated by SQL scoping rules.
            let rs = exec_batch(ctx, query, None)?;
            let mut schema = RelSchema::new();
            schema.push_binding(alias.clone(), rs.columns);
            ctx.charge(schema.width() as u64 * vec_cost(rs.rows.len()));
            Ok(Batch::from_rows(schema, &rs.rows))
        }
    }
}

fn and3(l: Value, r: Value) -> Value {
    match (l, r) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn or3(l: Value, r: Value) -> Value {
    match (l, r) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

/// Evaluate `expr` row-by-row through the scalar evaluator — used for
/// sub-query-bearing expressions and to reproduce exact short-circuit
/// semantics when a vectorized AND/OR arm errors.
fn per_row(
    ctx: &EvalCtx<'_>,
    expr: &Expr,
    batch: &Batch,
    outer: Option<&Scope<'_>>,
) -> Result<ColumnVec, EngineError> {
    let mut out = Vec::with_capacity(batch.len);
    for i in 0..batch.len {
        let row = batch.row_at(i);
        let scope = Scope {
            schema: &batch.schema,
            row: &row,
            parent: outer,
        };
        out.push(eval(ctx, expr, &scope)?);
    }
    Ok(out)
}

/// Vectorized expression evaluation: one [`ColumnVec`] out per batch
/// in. Sub-query-bearing expressions fall back to [`per_row`] (the
/// sub-query cache still makes uncorrelated ones cheap). On an empty
/// batch no evaluation happens at all — matching the row engine, which
/// never resolves columns it never reads.
pub(crate) fn eval_columns(
    ctx: &EvalCtx<'_>,
    expr: &Expr,
    batch: &Batch,
    outer: Option<&Scope<'_>>,
) -> Result<ColumnVec, EngineError> {
    let n = batch.len;
    if n == 0 {
        return Ok(Vec::new());
    }
    if expr.contains_subquery() {
        return per_row(ctx, expr, batch, outer);
    }
    ctx.charge(vec_cost(n));
    match expr {
        Expr::Column(c) => {
            if let Some(i) = batch.schema.resolve(c)? {
                Ok(batch.columns[i].clone())
            } else if let Some(p) = outer {
                // Correlated reference: constant within this batch.
                let v = p.lookup(c)?;
                Ok(vec![v; n])
            } else {
                Err(EngineError::UnknownColumn(match &c.table {
                    Some(t) => format!("{t}.{}", c.column),
                    None => c.column.clone(),
                }))
            }
        }
        Expr::Literal(l) => Ok(vec![literal_value(l); n]),
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            let l = eval_columns(ctx, left, batch, outer)?;
            if l.iter().all(|v| matches!(v, Value::Bool(false))) {
                return Ok(l);
            }
            match eval_columns(ctx, right, batch, outer) {
                Ok(r) => Ok(l.into_iter().zip(r).map(|(a, b)| and3(a, b)).collect()),
                // The row engine would skip the erroring arm wherever
                // the left side already decided; replay row-by-row.
                Err(_) => per_row(ctx, expr, batch, outer),
            }
        }
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let l = eval_columns(ctx, left, batch, outer)?;
            if l.iter().all(|v| matches!(v, Value::Bool(true))) {
                return Ok(l);
            }
            match eval_columns(ctx, right, batch, outer) {
                Ok(r) => Ok(l.into_iter().zip(r).map(|(a, b)| or3(a, b)).collect()),
                Err(_) => per_row(ctx, expr, batch, outer),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval_columns(ctx, left, batch, outer)?;
            let r = eval_columns(ctx, right, batch, outer)?;
            l.iter()
                .zip(&r)
                .map(|(a, b)| binary_op(a, *op, b))
                .collect()
        }
        Expr::Unary { op, expr: inner } => {
            use nlidb_sqlir::ast::UnaryOp;
            let col = eval_columns(ctx, inner, batch, outer)?;
            col.into_iter()
                .map(|v| match op {
                    UnaryOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::Null => Ok(Value::Null),
                        other => Err(EngineError::InvalidExpression(format!(
                            "NOT applied to {other:?}"
                        ))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(EngineError::InvalidExpression(format!(
                            "negation of {other:?}"
                        ))),
                    },
                })
                .collect()
        }
        Expr::Agg { .. } => Err(EngineError::InvalidExpression(
            "aggregate outside aggregation context".into(),
        )),
        Expr::InList {
            expr: needle,
            list,
            negated,
        } => {
            let v = eval_columns(ctx, needle, batch, outer)?;
            let items: Vec<ColumnVec> = list
                .iter()
                .map(|e| eval_columns(ctx, e, batch, outer))
                .collect::<Result<_, _>>()?;
            Ok((0..n)
                .map(|i| {
                    if v[i].is_null() {
                        return Value::Null;
                    }
                    let mut saw_null = false;
                    for item in &items {
                        match v[i].sql_eq(&item[i]) {
                            Some(true) => return Value::Bool(!negated),
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(*negated)
                    }
                })
                .collect())
        }
        Expr::Between {
            expr: mid,
            low,
            high,
            negated,
        } => {
            let v = eval_columns(ctx, mid, batch, outer)?;
            let lo = eval_columns(ctx, low, batch, outer)?;
            let hi = eval_columns(ctx, high, batch, outer)?;
            Ok((0..n)
                .map(|i| {
                    let ge = v[i].compare(&lo[i]).map(|o| o != std::cmp::Ordering::Less);
                    let le = v[i]
                        .compare(&hi[i])
                        .map(|o| o != std::cmp::Ordering::Greater);
                    let within = match (ge, le) {
                        (Some(a), Some(b)) => Some(a && b),
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        _ => None,
                    };
                    bool3(within.map(|w| w != *negated))
                })
                .collect())
        }
        Expr::Like {
            expr: inner,
            pattern,
            negated,
        } => {
            let col = eval_columns(ctx, inner, batch, outer)?;
            col.into_iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(Value::Bool(sql_like(&s, pattern) != *negated)),
                    Value::Null => Ok(Value::Null),
                    other => Err(EngineError::InvalidExpression(format!(
                        "LIKE applied to {other:?}"
                    ))),
                })
                .collect()
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            let col = eval_columns(ctx, inner, batch, outer)?;
            Ok(col
                .into_iter()
                .map(|v| Value::Bool(v.is_null() != *negated))
                .collect())
        }
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            unreachable!("sub-query expressions take the per_row path")
        }
    }
}

/// Vectorized per-column grouping keys for `cols[i]` of each row.
fn key_columns(ctx: &EvalCtx<'_>, cols: &[&ColumnVec], len: usize) -> Vec<Vec<String>> {
    cols.iter()
        .map(|c| {
            ctx.charge(vec_cost(len));
            c.iter().map(Value::group_key).collect()
        })
        .collect()
}

fn join_batch(
    ctx: &EvalCtx<'_>,
    left: Batch,
    join: &Join,
    outer: Option<&Scope<'_>>,
) -> Result<Batch, EngineError> {
    let right = batch_of(ctx, &join.source, outer)?;
    let mut combined = left.schema.clone();
    for (name, cols, _) in &right.schema.bindings {
        combined.push_binding(name.clone(), cols.clone());
    }

    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    split_equi(
        &join.on,
        &left.schema,
        &right.schema,
        &mut residual,
        &mut pairs,
    );

    let residual_ok = |row: &[Value]| -> Result<bool, EngineError> {
        let scope = Scope {
            schema: &combined,
            row,
            parent: outer,
        };
        for c in &residual {
            if !eval(ctx, c, &scope)?.is_true() {
                return Ok(false);
            }
        }
        Ok(true)
    };

    // (left row, right row | NULL padding), in probe order — the exact
    // emission order of the row engine.
    let mut emit: Vec<(usize, Option<usize>)> = Vec::new();
    if !pairs.is_empty() {
        // Vectorized hash join: per-column key strings, then one
        // amortized build pass and one probe pass.
        let lcols: Vec<&ColumnVec> = pairs.iter().map(|(l, _)| &left.columns[*l]).collect();
        let rcols: Vec<&ColumnVec> = pairs.iter().map(|(_, r)| &right.columns[*r]).collect();
        let lkeys = key_columns(ctx, &lcols, left.len);
        let rkeys = key_columns(ctx, &rcols, right.len);
        ctx.charge(vec_cost(right.len) + vec_cost(left.len));
        let mut table: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
        for ri in 0..right.len {
            // NULL keys never match in SQL equi-joins.
            if rcols.iter().any(|c| c[ri].is_null()) {
                continue;
            }
            let key: Vec<String> = rkeys.iter().map(|k| k[ri].clone()).collect();
            table.entry(key).or_default().push(ri);
        }
        for li in 0..left.len {
            let null_key = lcols.iter().any(|c| c[li].is_null());
            let mut matched = false;
            if !null_key {
                let key: Vec<String> = lkeys.iter().map(|k| k[li].clone()).collect();
                if let Some(ris) = table.get(&key) {
                    if residual.is_empty() {
                        matched = !ris.is_empty();
                        emit.extend(ris.iter().map(|&ri| (li, Some(ri))));
                    } else {
                        // Residual conjuncts need full-row scopes: pay
                        // the row rate per candidate (eval charges).
                        for &ri in ris {
                            let mut row = left.row_at(li);
                            row.extend(right.row_at(ri));
                            if residual_ok(&row)? {
                                matched = true;
                                emit.push((li, Some(ri)));
                            }
                        }
                    }
                }
            }
            if !matched && join.kind == JoinKind::Left {
                emit.push((li, None));
            }
        }
    } else {
        // Theta join: nested loop at row rate, like the row engine.
        ctx.charge((left.len * right.len.max(1)) as u64);
        for li in 0..left.len {
            let mut matched = false;
            for ri in 0..right.len {
                let mut row = left.row_at(li);
                row.extend(right.row_at(ri));
                if residual_ok(&row)? {
                    matched = true;
                    emit.push((li, Some(ri)));
                }
            }
            if !matched && join.kind == JoinKind::Left {
                emit.push((li, None));
            }
        }
    }

    // Gather output columns from the emission list.
    let width = combined.width();
    ctx.charge(width as u64 * vec_cost(emit.len()));
    let mut columns: Vec<ColumnVec> = Vec::with_capacity(width);
    for c in &left.columns {
        columns.push(emit.iter().map(|&(li, _)| c[li].clone()).collect());
    }
    for c in &right.columns {
        columns.push(
            emit.iter()
                .map(|&(_, ri)| match ri {
                    Some(ri) => c[ri].clone(),
                    None => Value::Null,
                })
                .collect(),
        );
    }
    Ok(Batch {
        schema: combined,
        columns,
        len: emit.len(),
    })
}

fn exec_batch(
    ctx: &EvalCtx<'_>,
    q: &Query,
    outer: Option<&Scope<'_>>,
) -> Result<ResultSet, EngineError> {
    // FROM + JOINs.
    let mut batch = match &q.from {
        Some(src) => batch_of(ctx, src, outer)?,
        None => Batch {
            schema: RelSchema::new(),
            columns: Vec::new(),
            len: 1,
        },
    };
    for join in &q.joins {
        batch = join_batch(ctx, batch, join, outer)?;
    }

    // WHERE: vectorized mask, then gather.
    if let Some(pred) = &q.where_clause {
        let mask = eval_columns(ctx, pred, &batch, outer)?;
        let keep: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_true())
            .map(|(i, _)| i)
            .collect();
        if keep.len() != batch.len {
            batch = batch.select(&keep, ctx);
        }
    }

    // Output column names.
    let mut columns: Vec<String> = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Wildcard => columns.extend(batch.schema.display_names()),
            _ => columns.push(item_name(item)),
        }
    }

    // Sort-key plan (same rule as the row engine): a bare ORDER BY
    // column matching a select alias/name sorts by the projected value.
    let alias_index = |e: &Expr| -> Option<usize> {
        if let Expr::Column(ColumnRef {
            table: None,
            column,
        }) = e
        {
            if q.select.iter().all(|s| !matches!(s, SelectItem::Wildcard)) {
                return q.select.iter().position(|s| item_name(s) == *column).filter(|_| {
                    !matches!(
                        (batch.schema.resolve(&ColumnRef::bare(column)), q.select.iter().any(|s| matches!(s, SelectItem::Expr { alias: Some(a), .. } if a == column))),
                        (Ok(Some(_)), false)
                    )
                });
            }
        }
        None
    };

    // (projected row, sort keys)
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();

    if q.has_aggregation() {
        // Hash aggregation: vectorized grouping-key columns, then
        // first-seen group formation over row indexes.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if q.group_by.is_empty() {
            groups.push((0..batch.len).collect());
        } else {
            let mut gcols: Vec<Vec<String>> = Vec::with_capacity(q.group_by.len());
            for g in &q.group_by {
                let col = eval_columns(ctx, g, &batch, outer)?;
                ctx.charge(vec_cost(batch.len));
                gcols.push(col.iter().map(Value::group_key).collect());
            }
            let mut index: HashMap<Vec<String>, usize> = HashMap::new();
            for i in 0..batch.len {
                let key: Vec<String> = gcols.iter().map(|c| c[i].clone()).collect();
                match index.get(&key) {
                    Some(&g) => groups[g].push(i),
                    None => {
                        index.insert(key, groups.len());
                        groups.push(vec![i]);
                    }
                }
            }
        }
        // Aggregate evaluation works over materialized group rows —
        // shared with the row engine via `eval_grouped`.
        ctx.charge(batch.columns.len() as u64 * vec_cost(batch.len));
        let rows: Vec<Vec<Value>> = (0..batch.len).map(|i| batch.row_at(i)).collect();
        for group_idx in &groups {
            let group: Vec<&Vec<Value>> = group_idx.iter().map(|&i| &rows[i]).collect();
            if let Some(h) = &q.having {
                if !eval_grouped(ctx, h, &batch.schema, &group, outer)?.is_true() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(q.select.len());
            for item in &q.select {
                match item {
                    SelectItem::Wildcard => match group.first() {
                        Some(row) => out.extend(row.iter().cloned()),
                        None => {
                            out.extend(std::iter::repeat_n(Value::Null, batch.schema.width()));
                        }
                    },
                    SelectItem::Expr { expr, .. } => {
                        out.push(eval_grouped(ctx, expr, &batch.schema, &group, outer)?);
                    }
                }
            }
            let mut keys = Vec::with_capacity(q.order_by.len());
            for ob in &q.order_by {
                match alias_index(&ob.expr) {
                    Some(i) => keys.push(out[i].clone()),
                    None => keys.push(eval_grouped(ctx, &ob.expr, &batch.schema, &group, outer)?),
                }
            }
            produced.push((out, keys));
        }
    } else {
        // Vectorized projection: one column per select expression.
        let mut out_cols: Vec<ColumnVec> = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::Wildcard => {
                    ctx.charge(batch.columns.len() as u64 * vec_cost(batch.len));
                    out_cols.extend(batch.columns.iter().cloned());
                }
                SelectItem::Expr { expr, .. } => {
                    out_cols.push(eval_columns(ctx, expr, &batch, outer)?)
                }
            }
        }
        let mut key_cols: Vec<ColumnVec> = Vec::new();
        for ob in &q.order_by {
            match alias_index(&ob.expr) {
                Some(i) => {
                    ctx.charge(vec_cost(batch.len));
                    key_cols.push(out_cols[i].clone());
                }
                None => key_cols.push(eval_columns(ctx, &ob.expr, &batch, outer)?),
            }
        }
        produced = (0..batch.len)
            .map(|i| {
                (
                    out_cols.iter().map(|c| c[i].clone()).collect(),
                    key_cols.iter().map(|c| c[i].clone()).collect(),
                )
            })
            .collect();
    }

    // DISTINCT — vectorized key columns, first occurrence kept.
    if q.distinct {
        ctx.charge(columns.len() as u64 * vec_cost(produced.len()));
        let mut seen: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();
        produced.retain(|(row, _)| {
            let key: Vec<String> = row.iter().map(Value::group_key).collect();
            seen.insert(key)
        });
    }

    // ORDER BY (stable) — comparison sorts stay at row rate.
    if !q.order_by.is_empty() {
        ctx.charge(produced.len() as u64);
        let dirs: Vec<bool> = q.order_by.iter().map(|o| o.asc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), asc) in ka.iter().zip(kb).zip(&dirs) {
                let ord = a.sort_cmp(b);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // LIMIT.
    let mut rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(l) = q.limit {
        rows.truncate(l as usize);
    }
    Ok(ResultSet { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnType, TableSchema};
    use crate::exec::execute_rowwise_with_stats;
    use nlidb_sqlir::parse_query;

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("oid", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float),
        )
        .unwrap();
        for i in 0..40i64 {
            db.insert(
                "customers",
                vec![
                    Value::Int(i),
                    Value::Str(format!("c{i}")),
                    Value::Str(format!("city{}", i % 5)),
                ],
            )
            .unwrap();
            db.insert(
                "orders",
                vec![
                    Value::Int(100 + i),
                    Value::Int(i % 10),
                    Value::Float((i * 7 % 13) as f64 + 0.5),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn batch_matches_row_engine_and_costs_less_on_joins() {
        let db = shop();
        let sql = "SELECT customers.city, SUM(amount) AS total FROM customers \
                   JOIN orders ON customers.id = orders.customer_id \
                   WHERE amount > 2 GROUP BY customers.city ORDER BY total DESC";
        let q = parse_query(sql).unwrap();
        let (row_rs, row_stats) = execute_rowwise_with_stats(&db, &q).unwrap();
        let (batch_rs, batch_stats) = execute_with_stats(&db, &q).unwrap();
        assert_eq!(row_rs, batch_rs);
        assert!(
            batch_stats.ticks < row_stats.ticks,
            "batch {} should undercut row {} on a join-heavy plan",
            batch_stats.ticks,
            row_stats.ticks
        );
    }

    #[test]
    fn batch_ticks_are_deterministic() {
        let db = shop();
        let q = parse_query("SELECT city, COUNT(*) FROM customers WHERE id < 30 GROUP BY city")
            .unwrap();
        let a = execute_with_stats(&db, &q).unwrap();
        let b = execute_with_stats(&db, &q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn vectorized_and_preserves_short_circuit_on_errors() {
        // `name LIKE` over an Int column errors; rows where the left
        // arm is false must still pass silently, exactly as row-wise.
        let db = shop();
        let q = parse_query("SELECT name FROM customers WHERE city = 'city1' AND id LIKE 'x%'")
            .unwrap();
        let row = execute_rowwise_with_stats(&db, &q).map(|(rs, _)| rs);
        let batch = execute(&db, &q);
        assert_eq!(row.is_err(), batch.is_err());
    }

    #[test]
    fn empty_batch_skips_vectorized_evaluation() {
        let mut db = Database::new("e");
        db.create_table(TableSchema::new("t").column("v", ColumnType::Int))
            .unwrap();
        // Row engine never evaluates over zero rows, so an unknown
        // column goes unnoticed; the batch engine must match.
        let q = parse_query("SELECT v FROM t WHERE ghost > 1").unwrap();
        assert_eq!(
            execute(&db, &q),
            execute_rowwise_with_stats(&db, &q).map(|(r, _)| r)
        );
    }
}
