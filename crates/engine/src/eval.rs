//! Scalar expression evaluation with scope chains (for correlated
//! sub-queries) and grouped evaluation (for aggregate contexts).

use std::cell::RefCell;
use std::collections::HashMap;

use nlidb_sqlir::ast::{AggFunc, BinOp, ColumnRef, Expr, Literal, Query, UnaryOp};

use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::ResultSet;
use crate::value::Value;

/// Column layout of a (possibly joined) relation: each binding is one
/// FROM/JOIN source with its columns at a fixed offset.
#[derive(Debug, Clone, Default)]
pub struct RelSchema {
    /// (binding name, column names, starting offset).
    pub bindings: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl RelSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a binding; returns its starting offset.
    pub fn push_binding(&mut self, name: impl Into<String>, columns: Vec<String>) -> usize {
        let offset = self.width;
        self.width += columns.len();
        self.bindings.push((name.into(), columns, offset));
        offset
    }

    /// Total number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resolve a column reference to a flat row index within this
    /// relation. `Ok(None)` means "not found here" (the caller may try
    /// an outer scope); ambiguity is an error.
    pub fn resolve(&self, col: &ColumnRef) -> Result<Option<usize>, EngineError> {
        match &col.table {
            Some(t) => {
                for (name, cols, offset) in &self.bindings {
                    if name == t {
                        return match cols.iter().position(|c| c == &col.column) {
                            Some(i) => Ok(Some(offset + i)),
                            None => Ok(None),
                        };
                    }
                }
                Ok(None)
            }
            None => {
                let mut found = None;
                for (_, cols, offset) in &self.bindings {
                    if let Some(i) = cols.iter().position(|c| c == &col.column) {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(offset + i);
                    }
                }
                Ok(found)
            }
        }
    }

    /// Display names for all columns: bare when unique, qualified when
    /// the same column name appears in several bindings.
    pub fn display_names(&self) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (_, cols, _) in &self.bindings {
            for c in cols {
                *counts.entry(c.as_str()).or_default() += 1;
            }
        }
        let mut out = Vec::with_capacity(self.width);
        for (name, cols, _) in &self.bindings {
            for c in cols {
                if counts[c.as_str()] > 1 {
                    out.push(format!("{name}.{c}"));
                } else {
                    out.push(c.clone());
                }
            }
        }
        out
    }
}

/// A row in scope, linked to any outer (correlating) scopes.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'a> {
    /// Layout of `row`.
    pub schema: &'a RelSchema,
    /// Current row values.
    pub row: &'a [Value],
    /// Enclosing query's scope for correlated sub-queries.
    pub parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolve a column through the scope chain.
    pub fn lookup(&self, col: &ColumnRef) -> Result<Value, EngineError> {
        if let Some(i) = self.schema.resolve(col)? {
            return Ok(self.row[i].clone());
        }
        match self.parent {
            Some(p) => p.lookup(col),
            None => Err(EngineError::UnknownColumn(match &col.table {
                Some(t) => format!("{t}.{}", col.column),
                None => col.column.clone(),
            })),
        }
    }
}

/// Sub-query dispatch used by the evaluator; implemented by the
/// executor (`exec::ExecCtx`). Keyed caching of uncorrelated
/// sub-queries lives behind this trait.
pub struct EvalCtx<'a> {
    /// The database queried.
    pub db: &'a Database,
    /// Cache of uncorrelated sub-query results keyed by AST address.
    pub sub_cache: RefCell<HashMap<usize, Option<ResultSet>>>,
    /// Executor entry point (injected to avoid a module cycle).
    pub exec: fn(&EvalCtx<'_>, &Query, Option<&Scope<'_>>) -> Result<ResultSet, EngineError>,
    /// Logical work counter in *ticks*: one tick per row-wise operator
    /// application, `1 + n/VECTOR_WIDTH` per vectorized column
    /// operation (see [`crate::batch`]). Deterministic by construction
    /// — no wall-clock — so tick totals are comparable across engines
    /// and reproducible across runs.
    pub ticks: std::cell::Cell<u64>,
}

impl<'a> EvalCtx<'a> {
    /// Charge `n` ticks of logical work.
    pub fn charge(&self, n: u64) {
        self.ticks.set(self.ticks.get().wrapping_add(n));
    }
    /// Execute a sub-query, caching it when it proves uncorrelated.
    /// A sub-query is treated as correlated iff executing it *without*
    /// the outer scope fails column resolution.
    pub fn subquery(&self, q: &Query, scope: Option<&Scope<'_>>) -> Result<ResultSet, EngineError> {
        let key = q as *const Query as usize;
        if let Some(cached) = self.sub_cache.borrow().get(&key) {
            match cached {
                Some(rs) => return Ok(rs.clone()),
                None => return (self.exec)(self, q, scope), // known correlated
            }
        }
        match (self.exec)(self, q, None) {
            Ok(rs) => {
                self.sub_cache.borrow_mut().insert(key, Some(rs.clone()));
                Ok(rs)
            }
            Err(EngineError::UnknownColumn(_)) if scope.is_some() => {
                self.sub_cache.borrow_mut().insert(key, None);
                (self.exec)(self, q, scope)
            }
            Err(e) => Err(e),
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (single char), case-sensitive.
pub fn sql_like(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // dp[i][j]: t[..i] matches p[..j]; rolling row.
    let mut prev = vec![false; p.len() + 1];
    prev[0] = true;
    for j in 1..=p.len() {
        prev[j] = prev[j - 1] && p[j - 1] == '%';
    }
    let mut cur = vec![false; p.len() + 1];
    for i in 1..=t.len() {
        cur[0] = false;
        for j in 1..=p.len() {
            cur[j] = match p[j - 1] {
                '%' => cur[j - 1] || prev[j],
                '_' => prev[j - 1],
                c => prev[j - 1] && t[i - 1] == c,
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[p.len()]
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

/// Evaluate a scalar expression against one row scope. Aggregate nodes
/// are invalid here — use [`eval_grouped`] in aggregate contexts.
pub fn eval(ctx: &EvalCtx<'_>, expr: &Expr, scope: &Scope<'_>) -> Result<Value, EngineError> {
    // One tick per operator application: recursion charges each
    // expression node applied to each row.
    ctx.charge(1);
    match expr {
        Expr::Column(c) => scope.lookup(c),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Binary { left, op, right } => {
            let l = eval(ctx, left, scope)?;
            // Short-circuit AND/OR with three-valued logic.
            match op {
                BinOp::And => {
                    if matches!(l, Value::Bool(false)) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(ctx, right, scope)?;
                    return Ok(match (l, r) {
                        (_, Value::Bool(false)) => Value::Bool(false),
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if matches!(l, Value::Bool(true)) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(ctx, right, scope)?;
                    return Ok(match (l, r) {
                        (_, Value::Bool(true)) => Value::Bool(true),
                        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let r = eval(ctx, right, scope)?;
            binary_op(&l, *op, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr, scope)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Null,
                    other => {
                        return Err(EngineError::InvalidExpression(format!(
                            "NOT applied to {other:?}"
                        )))
                    }
                }),
                UnaryOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(EngineError::InvalidExpression(format!(
                        "negation of {other:?}"
                    ))),
                },
            }
        }
        Expr::Agg { .. } => Err(EngineError::InvalidExpression(
            "aggregate outside aggregation context".into(),
        )),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(ctx, expr, scope)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(ctx, item, scope)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let v = eval(ctx, expr, scope)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rs = ctx.subquery(subquery, Some(scope))?;
            let mut saw_null = false;
            for row in &rs.rows {
                let item = row.first().cloned().unwrap_or(Value::Null);
                match v.sql_eq(&item) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Exists { subquery, negated } => {
            let rs = ctx.subquery(subquery, Some(scope))?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::ScalarSubquery(q) => {
            let rs = ctx.subquery(q, Some(scope))?;
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => {
                    if rs.rows[0].len() != 1 {
                        Err(EngineError::NonScalarSubquery)
                    } else {
                        Ok(rs.rows[0][0].clone())
                    }
                }
                _ => Err(EngineError::NonScalarSubquery),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(ctx, expr, scope)?;
            let lo = eval(ctx, low, scope)?;
            let hi = eval(ctx, high, scope)?;
            let ge = v.compare(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.compare(&hi).map(|o| o != std::cmp::Ordering::Greater);
            let within = match (ge, le) {
                (Some(a), Some(b)) => Some(a && b),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            };
            Ok(bool3(within.map(|w| w != *negated)))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(ctx, expr, scope)?;
            match v {
                Value::Str(s) => Ok(Value::Bool(sql_like(&s, pattern) != *negated)),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::InvalidExpression(format!(
                    "LIKE applied to {other:?}"
                ))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

pub(crate) fn binary_op(l: &Value, op: BinOp, r: &Value) -> Result<Value, EngineError> {
    use BinOp::*;
    match op {
        Eq => Ok(bool3(l.sql_eq(r))),
        NotEq => Ok(bool3(l.sql_eq(r).map(|b| !b))),
        Lt => Ok(bool3(l.compare(r).map(|o| o == std::cmp::Ordering::Less))),
        LtEq => Ok(bool3(
            l.compare(r).map(|o| o != std::cmp::Ordering::Greater),
        )),
        Gt => Ok(bool3(
            l.compare(r).map(|o| o == std::cmp::Ordering::Greater),
        )),
        GtEq => Ok(bool3(l.compare(r).map(|o| o != std::cmp::Ordering::Less))),
        Plus | Minus | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except division.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                return Ok(match op {
                    Plus => Value::Int(a + b),
                    Minus => Value::Int(a - b),
                    Mul => Value::Int(a * b),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Float(*a as f64 / *b as f64)
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = (
                l.as_f64().ok_or_else(|| {
                    EngineError::InvalidExpression(format!("arithmetic on {l:?}"))
                })?,
                r.as_f64().ok_or_else(|| {
                    EngineError::InvalidExpression(format!("arithmetic on {r:?}"))
                })?,
            );
            Ok(match op {
                Plus => Value::Float(a + b),
                Minus => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
        And | Or => unreachable!("handled in eval"),
    }
}

/// Evaluate an expression in an aggregate context: aggregate nodes are
/// computed over `group` (each row evaluated in its own scope); bare
/// columns resolve against the group's first row (SQL requires them to
/// be grouping keys). An empty group yields SQL's empty-input aggregate
/// semantics (COUNT = 0, others NULL).
pub fn eval_grouped(
    ctx: &EvalCtx<'_>,
    expr: &Expr,
    schema: &RelSchema,
    group: &[&Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Value, EngineError> {
    ctx.charge(1);
    match expr {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => {
            let mut vals: Vec<Value> = Vec::with_capacity(group.len());
            for row in group {
                let scope = Scope {
                    schema,
                    row,
                    parent,
                };
                match arg {
                    Some(a) => {
                        let v = eval(ctx, a, &scope)?;
                        if !v.is_null() {
                            vals.push(v);
                        }
                    }
                    None => vals.push(Value::Int(1)), // COUNT(*)
                }
            }
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                vals.retain(|v| seen.insert(v.group_key()));
            }
            aggregate(*func, &vals)
        }
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(ctx, left, schema, group, parent)?;
            let r = eval_grouped(ctx, right, schema, group, parent)?;
            match op {
                BinOp::And => Ok(match (l, r) {
                    (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                    (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                    _ => Value::Null,
                }),
                BinOp::Or => Ok(match (l, r) {
                    (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                    (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                    _ => Value::Null,
                }),
                _ => binary_op(&l, *op, &r),
            }
        }
        Expr::Unary { op, expr: inner } => {
            let v = eval_grouped(ctx, inner, schema, group, parent)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => Value::Null,
                }),
                UnaryOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    _ => Ok(Value::Null),
                },
            }
        }
        // Non-aggregate leaves evaluate against the group's first row.
        other => match group.first() {
            Some(row) => {
                let scope = Scope {
                    schema,
                    row,
                    parent,
                };
                eval(ctx, other, &scope)
            }
            None => Ok(Value::Null),
        },
    }
}

fn aggregate(func: AggFunc, vals: &[Value]) -> Result<Value, EngineError> {
    match func {
        AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0.0;
            for v in vals {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += *f;
                    }
                    other => {
                        return Err(EngineError::InvalidExpression(format!(
                            "SUM/AVG over {other:?}"
                        )))
                    }
                }
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / vals.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.compare(b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(sql_like("hello", "hello"));
        assert!(sql_like("hello", "h%"));
        assert!(sql_like("hello", "%llo"));
        assert!(sql_like("hello", "h_llo"));
        assert!(sql_like("hello", "%"));
        assert!(!sql_like("hello", "h_"));
        assert!(!sql_like("hello", "world"));
        assert!(sql_like("", "%"));
        assert!(!sql_like("", "_"));
        assert!(sql_like("abc", "a%c"));
        assert!(sql_like("a%c", "a%c")); // % in text matches via wildcard
    }

    #[test]
    fn rel_schema_resolution() {
        let mut rs = RelSchema::new();
        rs.push_binding("c", vec!["id".into(), "name".into()]);
        rs.push_binding("o", vec!["id".into(), "amount".into()]);
        assert_eq!(
            rs.resolve(&ColumnRef::qualified("o", "amount")).unwrap(),
            Some(3)
        );
        assert_eq!(rs.resolve(&ColumnRef::bare("name")).unwrap(), Some(1));
        assert!(matches!(
            rs.resolve(&ColumnRef::bare("id")),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert_eq!(rs.resolve(&ColumnRef::bare("ghost")).unwrap(), None);
        assert_eq!(rs.width(), 4);
    }

    #[test]
    fn display_names_qualify_duplicates() {
        let mut rs = RelSchema::new();
        rs.push_binding("c", vec!["id".into(), "name".into()]);
        rs.push_binding("o", vec!["id".into()]);
        assert_eq!(rs.display_names(), vec!["c.id", "name", "o.id"]);
    }

    #[test]
    fn aggregate_semantics() {
        assert_eq!(aggregate(AggFunc::Count, &[]).unwrap(), Value::Int(0));
        assert_eq!(aggregate(AggFunc::Sum, &[]).unwrap(), Value::Null);
        assert_eq!(
            aggregate(AggFunc::Sum, &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            aggregate(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            aggregate(AggFunc::Avg, &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            aggregate(AggFunc::Min, &[Value::Int(3), Value::Int(1)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            aggregate(AggFunc::Max, &[Value::from("a"), Value::from("b")]).unwrap(),
            Value::from("b")
        );
        assert_eq!(aggregate(AggFunc::Min, &[]).unwrap(), Value::Null);
    }
}
