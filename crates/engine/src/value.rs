//! Runtime values with SQL-ish coercion, comparison, and NULL rules.

use std::cmp::Ordering;
use std::fmt;

/// A runtime cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string (dates are ISO strings, so lexicographic order is
    /// chronological).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl Value {
    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view with Int→Float widening.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL truthiness: only `Bool(true)` passes a filter.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Three-valued comparison. `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality through [`Value::compare`] (NULL = anything → None).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total order for sorting: NULLs first, then by value; numeric
    /// types compare cross-type; mixed non-numeric types order by a
    /// fixed type rank so sorting is deterministic.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match rank(self).cmp(&rank(other)) {
                Ordering::Equal => self.compare(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }

    /// Grouping/distinct key: a canonical string form under which equal
    /// values (incl. `Int(2)` vs `Float(2.0)`) collide.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Bool(b) => format!("\u{1}{b}"),
            Value::Int(i) => format!("\u{2}{}", *i as f64),
            Value::Float(f) => format!("\u{2}{f}"),
            Value::Str(s) => format!("\u{3}{s}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::from("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn sort_order_nulls_first() {
        let mut v = vec![Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn sort_is_total_across_types() {
        let mut v = [
            Value::from("z"),
            Value::Int(5),
            Value::Bool(false),
            Value::Null,
            Value::Float(1.5),
        ];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Bool(false));
        assert!(matches!(v[4], Value::Str(_)));
    }

    #[test]
    fn group_keys_unify_numerics() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Int(2).group_key(), Value::from("2").group_key());
        assert_ne!(Value::Null.group_key(), Value::from("null").group_key());
    }

    #[test]
    fn iso_dates_order_chronologically() {
        assert_eq!(
            Value::from("2019-03-01").compare(&Value::from("2019-11-20")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
