//! Runtime values with SQL-ish coercion, comparison, and NULL rules.

use std::cmp::Ordering;
use std::fmt;

/// A runtime cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string (dates are ISO strings, so lexicographic order is
    /// chronological).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl Value {
    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view with Int→Float widening.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL truthiness: only `Bool(true)` passes a filter.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Three-valued comparison. `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality through [`Value::compare`] (NULL = anything → None).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total order for sorting: NULLs first, then by value; numeric
    /// types compare cross-type; mixed non-numeric types order by a
    /// fixed type rank so sorting is deterministic.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match rank(self).cmp(&rank(other)) {
                Ordering::Equal => self.compare(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }

    /// Grouping/distinct key: a canonical string form under which equal
    /// values (incl. `Int(2)` vs `Float(2.0)`) collide.
    ///
    /// Integers keep their exact decimal form — encoding through `f64`
    /// would fold distinct integers with |i| ≥ 2⁵³ into one key. A
    /// float shares the integer form only when it is exactly integral
    /// and within `i64` range. Edge cases are normalized so grouping is
    /// an equivalence: `-0.0` keys as `0` (SQL equality says they are
    /// equal), and every NaN keys as `nan` (NaNs group together even
    /// though `compare` treats them as incomparable).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Bool(b) => format!("\u{1}{b}"),
            Value::Int(i) => format!("\u{2}{i}"),
            Value::Float(f) => {
                if f.is_nan() {
                    "\u{2}nan".to_string()
                } else if *f == 0.0 {
                    // Covers -0.0: one key for both zeros.
                    "\u{2}0".to_string()
                } else if f.fract() == 0.0 && in_i64_range(*f) {
                    format!("\u{2}{}", *f as i64)
                } else {
                    format!("\u{2}{f}")
                }
            }
            Value::Str(s) => format!("\u{3}{s}"),
        }
    }
}

/// Is `f` exactly representable territory for an `i64` cast? The upper
/// bound is exclusive because `i64::MAX as f64` rounds up to 2⁶³.
pub(crate) fn in_i64_range(f: f64) -> bool {
    f >= i64::MIN as f64 && f < -(i64::MIN as f64)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::from("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn sort_order_nulls_first() {
        let mut v = vec![Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn sort_is_total_across_types() {
        let mut v = [
            Value::from("z"),
            Value::Int(5),
            Value::Bool(false),
            Value::Null,
            Value::Float(1.5),
        ];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Bool(false));
        assert!(matches!(v[4], Value::Str(_)));
    }

    #[test]
    fn group_keys_unify_numerics() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Int(2).group_key(), Value::from("2").group_key());
        assert_ne!(Value::Null.group_key(), Value::from("null").group_key());
    }

    #[test]
    fn group_keys_distinguish_large_integers() {
        // 2^53 and 2^53 + 1 are the first adjacent integers an f64
        // cannot tell apart; the old `*i as f64` encoding keyed them
        // identically.
        let a = Value::Int(1 << 53);
        let b = Value::Int((1 << 53) + 1);
        assert_ne!(a.group_key(), b.group_key());
        assert_ne!(
            Value::Int(i64::MAX).group_key(),
            Value::Int(i64::MAX - 1).group_key()
        );
        // Int/Float unification still holds where the float is exact.
        assert_eq!(
            Value::Int(1 << 53).group_key(),
            Value::Float((1u64 << 53) as f64).group_key()
        );
    }

    #[test]
    fn group_keys_normalize_float_edge_cases() {
        // -0.0 groups with 0 (and with Int(0)); SQL equality agrees.
        assert_eq!(
            Value::Float(-0.0).group_key(),
            Value::Float(0.0).group_key()
        );
        assert_eq!(Value::Float(-0.0).group_key(), Value::Int(0).group_key());
        // NaNs group together, deterministically.
        assert_eq!(
            Value::Float(f64::NAN).group_key(),
            Value::Float(-f64::NAN).group_key()
        );
        // Out-of-i64-range integral floats still key as floats, and the
        // boundary 2^63 never takes the integer path.
        let big = -(i64::MIN as f64); // 2^63, exclusive bound
        assert_eq!(big.fract(), 0.0);
        assert_eq!(Value::Float(big).group_key(), format!("\u{2}{big}"));
        assert_eq!(
            Value::Float(i64::MIN as f64).group_key(),
            Value::Int(i64::MIN).group_key()
        );
    }

    #[test]
    fn iso_dates_order_chronologically() {
        assert_eq!(
            Value::from("2019-03-01").compare(&Value::from("2019-11-20")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
