//! Engine error type.

use std::fmt;

/// Anything that can go wrong while defining, loading, or querying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist (optionally table-qualified).
    UnknownColumn(String),
    /// Ambiguous bare column name across joined tables.
    AmbiguousColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Row arity or value type does not match the schema.
    SchemaViolation(String),
    /// Expression is invalid in its context (e.g. aggregate in WHERE).
    InvalidExpression(String),
    /// A scalar sub-query returned more than one row/column.
    NonScalarSubquery,
    /// Unsupported construct reached the executor.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            EngineError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            EngineError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            EngineError::InvalidExpression(m) => write!(f, "invalid expression: {m}"),
            EngineError::NonScalarSubquery => {
                write!(f, "scalar sub-query returned more than one row/column")
            }
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
