//! Property tests on execution invariants: relational algebra laws
//! that must hold for every generated table and predicate.

use proptest::prelude::*;

use nlidb_engine::{execute, ColumnType, Database, TableSchema, Value};
use nlidb_sqlir::ast::{BinOp, Expr};
use nlidb_sqlir::QueryBuilder;

#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: f64,
    c: String,
    null_b: bool,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        -20i64..20,
        -5i32..5,
        prop::sample::select(vec!["red", "green", "blue", "cyan"]),
        prop::bool::weighted(0.15),
    )
        .prop_map(|(a, b, c, null_b)| Row {
            a,
            b: b as f64 / 2.0,
            c: c.to_string(),
            null_b,
        })
}

fn build_db(rows: &[Row]) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        TableSchema::new("t")
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Float)
            .column("c", ColumnType::Text),
    )
    .unwrap();
    for r in rows {
        db.insert(
            "t",
            vec![
                Value::Int(r.a),
                if r.null_b {
                    Value::Null
                } else {
                    Value::Float(r.b)
                },
                Value::Str(r.c.clone()),
            ],
        )
        .unwrap();
    }
    db
}

fn predicate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-20i64..20).prop_map(|v| Expr::col("a").binary(BinOp::Gt, Expr::int(v))),
        (-20i64..20).prop_map(|v| Expr::col("a").binary(BinOp::LtEq, Expr::int(v))),
        (-3i64..3).prop_map(|v| Expr::col("b").binary(BinOp::Lt, Expr::int(v))),
        prop::sample::select(vec!["red", "green", "blue", "purple"])
            .prop_map(|c| Expr::col("c").eq(Expr::str(c))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn filter_returns_subset(rows in prop::collection::vec(row_strategy(), 0..40), pred in predicate_strategy()) {
        let db = build_db(&rows);
        let all = execute(&db, &QueryBuilder::from_table("t").build()).unwrap();
        let filtered = execute(
            &db,
            &QueryBuilder::from_table("t").and_where(pred).build(),
        )
        .unwrap();
        prop_assert!(filtered.rows.len() <= all.rows.len());
    }

    #[test]
    fn predicate_and_negation_partition_nonnull(rows in prop::collection::vec(row_strategy(), 0..40), v in -20i64..20) {
        // For a NULL-free column, P and NOT P partition the rows.
        let db = build_db(&rows);
        let p = Expr::col("a").binary(BinOp::Gt, Expr::int(v));
        let not_p = Expr::col("a").binary(BinOp::LtEq, Expr::int(v));
        let with = execute(&db, &QueryBuilder::from_table("t").and_where(p).build()).unwrap();
        let without =
            execute(&db, &QueryBuilder::from_table("t").and_where(not_p).build()).unwrap();
        prop_assert_eq!(with.rows.len() + without.rows.len(), rows.len());
    }

    #[test]
    fn limit_truncates(rows in prop::collection::vec(row_strategy(), 0..40), n in 0u64..50) {
        let db = build_db(&rows);
        let limited =
            execute(&db, &QueryBuilder::from_table("t").limit(n).build()).unwrap();
        prop_assert!(limited.rows.len() <= n as usize);
        prop_assert_eq!(limited.rows.len(), rows.len().min(n as usize));
    }

    #[test]
    fn count_star_matches_row_count(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let counted = execute(
            &db,
            &QueryBuilder::from_table("t").select_expr(Expr::count_star(), None).build(),
        )
        .unwrap();
        prop_assert_eq!(counted.rows[0][0].clone(), Value::Int(rows.len() as i64));
    }

    #[test]
    fn order_by_sorts(rows in prop::collection::vec(row_strategy(), 0..40), asc in any::<bool>()) {
        let db = build_db(&rows);
        let sorted = execute(
            &db,
            &QueryBuilder::from_table("t")
                .select_col("a")
                .order_by(Expr::col("a"), asc)
                .build(),
        )
        .unwrap();
        for w in sorted.rows.windows(2) {
            let ord = w[0][0].sort_cmp(&w[1][0]);
            if asc {
                prop_assert!(ord != std::cmp::Ordering::Greater);
            } else {
                prop_assert!(ord != std::cmp::Ordering::Less);
            }
        }
    }

    #[test]
    fn distinct_leq_total_and_idempotent(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let all = execute(
            &db,
            &QueryBuilder::from_table("t").select_col("c").build(),
        )
        .unwrap();
        let distinct = execute(
            &db,
            &QueryBuilder::from_table("t").distinct().select_col("c").build(),
        )
        .unwrap();
        prop_assert!(distinct.rows.len() <= all.rows.len());
        prop_assert!(distinct.rows.len() <= 4, "only four colors exist");
        // Idempotence: DISTINCT of DISTINCT output changes nothing.
        let mut seen = std::collections::HashSet::new();
        for r in &distinct.rows {
            prop_assert!(seen.insert(r[0].group_key()), "duplicate after DISTINCT");
        }
    }

    #[test]
    fn group_count_sums_to_total(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let grouped = execute(
            &db,
            &QueryBuilder::from_table("t")
                .select_col("c")
                .select_expr(Expr::count_star(), None)
                .group_by(Expr::col("c"))
                .build(),
        )
        .unwrap();
        let sum: i64 = grouped
            .rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(sum, rows.len() as i64);
    }

    #[test]
    fn sum_ignores_nulls(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let summed = execute(
            &db,
            &QueryBuilder::from_table("t")
                .select_expr(
                    Expr::agg(nlidb_sqlir::ast::AggFunc::Sum, Expr::col("b")),
                    None,
                )
                .build(),
        )
        .unwrap();
        let expected: f64 = rows.iter().filter(|r| !r.null_b).map(|r| r.b).sum();
        let any_non_null = rows.iter().any(|r| !r.null_b);
        match &summed.rows[0][0] {
            Value::Null => prop_assert!(!any_non_null),
            v => {
                let got = v.as_f64().unwrap();
                prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
            }
        }
    }

    #[test]
    fn in_subquery_equals_join_semantics(rows in prop::collection::vec(row_strategy(), 1..30)) {
        // SELECT * FROM t WHERE c IN (SELECT c FROM t WHERE a > 0)
        // must equal filtering on colors that have a positive-a row.
        let db = build_db(&rows);
        let q = nlidb_sqlir::parse_query(
            "SELECT * FROM t WHERE c IN (SELECT c FROM t WHERE a > 0)",
        )
        .unwrap();
        let rs = execute(&db, &q).unwrap();
        let positive_colors: std::collections::HashSet<&str> = rows
            .iter()
            .filter(|r| r.a > 0)
            .map(|r| r.c.as_str())
            .collect();
        let expected = rows.iter().filter(|r| positive_colors.contains(r.c.as_str())).count();
        prop_assert_eq!(rs.rows.len(), expected);
    }
}
