//! Property tests for engine equivalence: over generated databases and
//! generated queries spanning the full supported SQL surface, the
//! batch-vectorized engine must produce results identical to the
//! row-at-a-time reference engine — not just bag-equal but
//! row-for-row, since both engines promise the same emission order.
//!
//! The value pool deliberately includes the two fixed key-encoding
//! hazards: integers straddling 2⁵³ and strings embedding U+001F.

use proptest::prelude::*;

use nlidb_engine::{
    execute, execute_rowwise, execute_with_stats, ColumnType, Database, TableSchema, Value,
};
use nlidb_sqlir::parse_query;

const BIG: i64 = 1 << 53;

fn tricky_int() -> impl Strategy<Value = i64> {
    prop_oneof![
        -20i64..20,
        prop::sample::select(vec![BIG, BIG + 1, BIG - 1, -BIG, -(BIG + 1)]),
    ]
}

fn tricky_str() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["red", "blue", "a\u{1f}", "\u{1f}b", "a\u{1f}b", ""])
        .prop_map(str::to_string)
}

#[derive(Debug, Clone)]
struct Dataset {
    t: Vec<(i64, Option<f64>, String, String)>,
    u: Vec<(i64, String)>,
}

fn dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(
            (
                tricky_int(),
                prop::option::of((-6i32..6).prop_map(|x| x as f64 / 2.0)),
                tricky_str(),
                tricky_str(),
            ),
            0..24,
        ),
        prop::collection::vec((tricky_int(), tricky_str()), 0..12),
    )
        .prop_map(|(t, u)| Dataset { t, u })
}

fn build_db(d: &Dataset) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        TableSchema::new("t")
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Float)
            .column("c", ColumnType::Text)
            .column("k", ColumnType::Text),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("u")
            .column("a", ColumnType::Int)
            .column("k", ColumnType::Text),
    )
    .unwrap();
    for (a, b, c, k) in &d.t {
        db.insert(
            "t",
            vec![
                Value::Int(*a),
                b.map(Value::Float).unwrap_or(Value::Null),
                Value::Str(c.clone()),
                Value::Str(k.clone()),
            ],
        )
        .unwrap();
    }
    for (a, k) in &d.u {
        db.insert("u", vec![Value::Int(*a), Value::Str(k.clone())])
            .unwrap();
    }
    db
}

/// Generated SQL covering all four complexity rungs plus the fixed
/// hazards (composite join/group keys, DISTINCT, large-int equality).
fn sql() -> impl Strategy<Value = String> {
    prop_oneof![
        (-20i64..20).prop_map(|v| format!("SELECT a, c FROM t WHERE a > {v}")),
        Just("SELECT DISTINCT c, k FROM t".to_string()),
        Just("SELECT c, COUNT(*), SUM(b) FROM t GROUP BY c ORDER BY c ASC".to_string()),
        Just("SELECT c, k, COUNT(*) FROM t GROUP BY c, k".to_string()),
        Just("SELECT a, COUNT(*) FROM t GROUP BY a".to_string()),
        Just("SELECT t.a, u.k FROM t JOIN u ON t.a = u.a".to_string()),
        Just("SELECT t.c, u.k FROM t JOIN u ON t.k = u.k AND t.c = u.k".to_string()),
        Just("SELECT t.a FROM t LEFT JOIN u ON t.a = u.a ORDER BY t.a ASC LIMIT 10".to_string()),
        (-5i64..5)
            .prop_map(|v| format!("SELECT t.a, u.a FROM t JOIN u ON t.a < u.a WHERE u.a < {v}")),
        Just("SELECT a FROM t WHERE c IN (SELECT k FROM u)".to_string()),
        Just("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)".to_string()),
        Just("SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t)".to_string()),
        Just(
            "SELECT d.c, d.n FROM (SELECT c, COUNT(*) AS n FROM t GROUP BY c) AS d \
             WHERE d.n > 1"
                .to_string()
        ),
        Just("SELECT c FROM t WHERE b IS NULL OR a BETWEEN -5 AND 5".to_string()),
        Just("SELECT c FROM t WHERE c LIKE '%a%' AND a <> 3".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn batch_engine_equals_row_engine(d in dataset(), q in sql()) {
        let db = build_db(&d);
        let query = parse_query(&q).unwrap();
        let row = execute_rowwise(&db, &query).unwrap();
        let batch = execute(&db, &query).unwrap();
        // The strict contract: identical rows in identical order.
        prop_assert_eq!(&row, &batch, "engines diverged on: {}", q);
        // And the E18 notion the issue names explicitly.
        prop_assert!(row.unordered_eq(&batch));
    }

    #[test]
    fn batch_ticks_deterministic_across_runs(d in dataset(), q in sql()) {
        let db = build_db(&d);
        let query = parse_query(&q).unwrap();
        let a = execute_with_stats(&db, &query).unwrap();
        let b = execute_with_stats(&db, &query).unwrap();
        prop_assert_eq!(a, b);
    }
}
