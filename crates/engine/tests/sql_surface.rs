//! SQL-surface integration tests: each supported construct driven
//! through parse → execute on a fixed fixture, including the NULL and
//! type-coercion corners that trip real engines.

use nlidb_engine::{execute, ColumnType, Database, EngineError, TableSchema, Value};
use nlidb_sqlir::parse_query;

fn fixture() -> Database {
    let mut db = Database::new("fix");
    db.create_table(
        TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("price", ColumnType::Float)
            .column("tag", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    let rows: Vec<(i64, Option<&str>, Option<f64>, &str)> = vec![
        (1, Some("apple pie"), Some(4.5), "food"),
        (2, Some("anvil"), Some(99.0), "tool"),
        (3, Some("axe"), None, "tool"),
        (4, None, Some(1.0), "misc"),
        (5, Some("apricot"), Some(2.5), "food"),
    ];
    for (id, name, price, tag) in rows {
        db.insert(
            "items",
            vec![
                Value::Int(id),
                name.map(Value::from).unwrap_or(Value::Null),
                price.map(Value::Float).unwrap_or(Value::Null),
                Value::from(tag),
            ],
        )
        .unwrap();
    }
    db
}

fn run(sql: &str) -> Vec<Vec<Value>> {
    let db = fixture();
    execute(&db, &parse_query(sql).unwrap()).unwrap().rows
}

#[test]
fn like_prefix_and_infix() {
    assert_eq!(run("SELECT id FROM items WHERE name LIKE 'a%'").len(), 4);
    assert_eq!(run("SELECT id FROM items WHERE name LIKE '%pie'").len(), 1);
    assert_eq!(run("SELECT id FROM items WHERE name LIKE 'a_e'").len(), 1); // axe
                                                                            // NULL name never matches LIKE (and never matches NOT LIKE either).
    assert_eq!(
        run("SELECT id FROM items WHERE name NOT LIKE 'a%'").len(),
        0
    );
}

#[test]
fn is_null_and_is_not_null() {
    assert_eq!(run("SELECT id FROM items WHERE price IS NULL").len(), 1);
    assert_eq!(run("SELECT id FROM items WHERE price IS NOT NULL").len(), 4);
    assert_eq!(run("SELECT id FROM items WHERE name IS NULL").len(), 1);
}

#[test]
fn between_includes_bounds_and_negates() {
    assert_eq!(
        run("SELECT id FROM items WHERE price BETWEEN 2.5 AND 4.5").len(),
        2
    );
    // NOT BETWEEN excludes NULL prices too (3-valued logic).
    assert_eq!(
        run("SELECT id FROM items WHERE price NOT BETWEEN 2.5 AND 4.5").len(),
        2
    );
}

#[test]
fn null_arithmetic_propagates() {
    let rows = run("SELECT price + 1 FROM items WHERE id = 3");
    assert_eq!(rows[0][0], Value::Null);
    let rows = run("SELECT price * 2 FROM items WHERE id = 1");
    assert_eq!(rows[0][0], Value::Float(9.0));
}

#[test]
fn distinct_with_order_by() {
    let rows = run("SELECT DISTINCT tag FROM items ORDER BY tag ASC");
    let tags: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(tags, vec!["food", "misc", "tool"]);
}

#[test]
fn aggregates_skip_nulls_per_sql() {
    let rows = run("SELECT COUNT(*), COUNT(price), AVG(price), MIN(price) FROM items");
    assert_eq!(rows[0][0], Value::Int(5));
    assert_eq!(rows[0][1], Value::Int(4), "COUNT(col) skips NULLs");
    assert_eq!(rows[0][2], Value::Float((4.5 + 99.0 + 1.0 + 2.5) / 4.0));
    assert_eq!(rows[0][3], Value::Float(1.0));
}

#[test]
fn having_over_aggregate_expression() {
    let rows = run(
        "SELECT tag, AVG(price) FROM items GROUP BY tag HAVING AVG(price) > 3 \
         ORDER BY tag ASC",
    );
    // food avg 3.5; tool avg 99 (axe's NULL skipped); misc avg 1.
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::from("food"));
    assert_eq!(rows[1][0], Value::from("tool"));
}

#[test]
fn in_list_with_null_member_never_matches_negated() {
    // id NOT IN (1, NULL): standard SQL says never TRUE.
    assert_eq!(
        run("SELECT id FROM items WHERE id NOT IN (1, NULL)").len(),
        0
    );
    assert_eq!(run("SELECT id FROM items WHERE id IN (1, NULL)").len(), 1);
}

#[test]
fn order_by_multiple_keys_stable() {
    let rows = run("SELECT tag, id FROM items ORDER BY tag ASC, id DESC");
    assert_eq!(rows[0][1], Value::Int(5)); // food: id 5 before 1
    assert_eq!(rows[1][1], Value::Int(1));
}

#[test]
fn scalar_subquery_empty_is_null() {
    let rows = run(
        "SELECT id FROM items WHERE price > (SELECT MAX(price) FROM items WHERE tag = 'ghost')",
    );
    // Sub-query over empty group → NULL → comparison never true.
    assert!(rows.is_empty());
}

#[test]
fn limit_zero_and_overshoot() {
    assert!(run("SELECT * FROM items LIMIT 0").is_empty());
    assert_eq!(run("SELECT * FROM items LIMIT 99").len(), 5);
}

#[test]
fn unknown_column_is_a_clean_error() {
    let db = fixture();
    let q = parse_query("SELECT ghost FROM items").unwrap();
    assert!(matches!(
        execute(&db, &q),
        Err(EngineError::UnknownColumn(_))
    ));
    let q = parse_query("SELECT * FROM phantom").unwrap();
    assert!(matches!(
        execute(&db, &q),
        Err(EngineError::UnknownTable(_))
    ));
}

#[test]
fn self_join_with_aliases() {
    let rows = run(
        "SELECT a.name FROM items AS a JOIN items AS b ON a.price < b.price \
         WHERE b.name = 'anvil' AND a.tag = 'food'",
    );
    assert_eq!(rows.len(), 2, "both foods are cheaper than the anvil");
}

#[test]
fn where_true_false_literals() {
    assert_eq!(run("SELECT id FROM items WHERE TRUE").len(), 5);
    assert!(run("SELECT id FROM items WHERE FALSE").is_empty());
}
