//! Property tests on the NLP substrate.

use proptest::prelude::*;

use nlidb_nlp::{
    jaro_winkler, levenshtein, ngram_dice, porter_stem, token_set_ratio, tokenize, TokenKind,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tokenizer_spans_are_ordered_and_faithful(input in "[ -~]{0,60}") {
        let tokens = tokenize(&input);
        let mut last_end = 0;
        for t in &tokens {
            prop_assert!(t.span.start >= last_end, "overlapping spans");
            prop_assert!(t.span.end <= input.len());
            prop_assert_eq!(&input[t.span.start..t.span.end], t.text.as_str());
            last_end = t.span.end;
        }
    }

    #[test]
    fn tokenizer_deterministic(input in "[ -~]{0,60}") {
        prop_assert_eq!(tokenize(&input), tokenize(&input));
    }

    #[test]
    fn tokenizer_word_norms_lowercase(input in "[A-Za-z ]{0,40}") {
        for t in tokenize(&input) {
            if t.kind == TokenKind::Word {
                prop_assert_eq!(t.norm.clone(), t.norm.to_lowercase());
                prop_assert!(!t.norm.is_empty());
            }
        }
    }

    #[test]
    fn stem_never_longer_than_input_plus_one(word in "[a-z]{1,15}") {
        let stem = porter_stem(&word);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= word.len() + 1, "{word} → {stem}");
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        if a != b {
            prop_assert!(levenshtein(&a, &b) > 0);
        }
    }

    #[test]
    fn levenshtein_bounded_by_longer_string(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn similarities_in_unit_interval(a in "[a-z ]{0,12}", b in "[a-z ]{0,12}") {
        for s in [
            jaro_winkler(&a, &b),
            ngram_dice(&a, &b, 2),
            ngram_dice(&a, &b, 3),
            token_set_ratio(&a, &b),
        ] {
            prop_assert!((0.0..=1.0).contains(&s), "{a:?} vs {b:?}: {s}");
        }
    }

    #[test]
    fn jaro_winkler_identity(a in "[a-z]{1,12}") {
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_symmetric(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        // Jaro is symmetric; the Winkler prefix bonus uses the common
        // prefix, also symmetric.
        prop_assert!((jaro_winkler(&a, &b) - jaro_winkler(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn number_tokens_parse(n in -100000i64..100000) {
        let s = n.to_string();
        let tokens = tokenize(&s);
        // Leading '-' at utterance start attaches to the number.
        prop_assert_eq!(tokens.len(), 1, "{:?}", tokens);
        prop_assert_eq!(tokens[0].as_number(), Some(n as f64));
    }

    #[test]
    fn analyze_views_stay_aligned(input in "[a-z ]{0,50}") {
        let a = nlidb_nlp::analyze(&input);
        prop_assert_eq!(a.tokens.len(), a.tagged.len());
        prop_assert_eq!(a.tree.nodes.len(), a.tokens.len());
        for chunk in &a.chunks {
            for &i in &chunk.token_indices {
                prop_assert!(i < a.tokens.len());
            }
        }
    }
}
