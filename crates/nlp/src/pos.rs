//! Part-of-speech tagging via lexicon lookup, suffix rules, and a small
//! set of contextual repair rules (a Brill-tagger-style cascade).
//!
//! NLIDB interpreters need coarse tags: nouns become entity-mention
//! candidates, adjectives/superlatives drive ORDER BY + LIMIT, numbers
//! become literals, prepositions guide attachment.

use crate::token::{Token, TokenKind};

/// Coarse part-of-speech tags sufficient for query interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common or proper noun.
    Noun,
    /// Verb (any inflection).
    Verb,
    /// Adjective.
    Adj,
    /// Superlative adjective ("largest", "most").
    Superlative,
    /// Comparative adjective ("larger", "more").
    Comparative,
    /// Adverb.
    Adv,
    /// Determiner/article.
    Det,
    /// Preposition or subordinating conjunction.
    Prep,
    /// Coordinating conjunction ("and", "or").
    Conj,
    /// Pronoun.
    Pron,
    /// Wh-word ("which", "what", "how").
    Wh,
    /// Cardinal number.
    Num,
    /// Quoted literal value.
    Quoted,
    /// Punctuation or symbol.
    Punct,
    /// Negation marker ("not", "without", "except").
    Neg,
}

/// A token paired with its tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedToken {
    /// The underlying token.
    pub token: Token,
    /// Assigned part-of-speech tag.
    pub tag: PosTag,
}

impl TaggedToken {
    /// Shorthand for the normalized word form.
    pub fn norm(&self) -> &str {
        &self.token.norm
    }
}

/// Closed-class lexicon: (word, tag).
static LEXICON: &[(&str, PosTag)] = &[
    ("the", PosTag::Det),
    ("a", PosTag::Det),
    ("an", PosTag::Det),
    ("each", PosTag::Det),
    ("every", PosTag::Det),
    ("all", PosTag::Det),
    ("any", PosTag::Det),
    ("some", PosTag::Det),
    ("no", PosTag::Neg),
    ("not", PosTag::Neg),
    ("without", PosTag::Neg),
    ("except", PosTag::Neg),
    ("excluding", PosTag::Neg),
    ("never", PosTag::Neg),
    ("of", PosTag::Prep),
    ("in", PosTag::Prep),
    ("on", PosTag::Prep),
    ("at", PosTag::Prep),
    ("by", PosTag::Prep),
    ("per", PosTag::Prep),
    ("for", PosTag::Prep),
    ("from", PosTag::Prep),
    ("to", PosTag::Prep),
    ("with", PosTag::Prep),
    ("between", PosTag::Prep),
    ("during", PosTag::Prep),
    ("before", PosTag::Prep),
    ("after", PosTag::Prep),
    ("since", PosTag::Prep),
    ("above", PosTag::Prep),
    ("below", PosTag::Prep),
    ("over", PosTag::Prep),
    ("under", PosTag::Prep),
    ("than", PosTag::Prep),
    ("across", PosTag::Prep),
    ("within", PosTag::Prep),
    ("and", PosTag::Conj),
    ("or", PosTag::Conj),
    ("but", PosTag::Conj),
    ("i", PosTag::Pron),
    ("me", PosTag::Pron),
    ("we", PosTag::Pron),
    ("us", PosTag::Pron),
    ("you", PosTag::Pron),
    ("it", PosTag::Pron),
    ("they", PosTag::Pron),
    ("them", PosTag::Pron),
    ("those", PosTag::Pron),
    ("these", PosTag::Pron),
    ("that", PosTag::Pron),
    ("this", PosTag::Pron),
    ("their", PosTag::Pron),
    ("its", PosTag::Pron),
    ("what", PosTag::Wh),
    ("which", PosTag::Wh),
    ("who", PosTag::Wh),
    ("whom", PosTag::Wh),
    ("whose", PosTag::Wh),
    ("when", PosTag::Wh),
    ("where", PosTag::Wh),
    ("why", PosTag::Wh),
    ("how", PosTag::Wh),
    ("is", PosTag::Verb),
    ("are", PosTag::Verb),
    ("was", PosTag::Verb),
    ("were", PosTag::Verb),
    ("be", PosTag::Verb),
    ("been", PosTag::Verb),
    ("has", PosTag::Verb),
    ("have", PosTag::Verb),
    ("had", PosTag::Verb),
    ("do", PosTag::Verb),
    ("does", PosTag::Verb),
    ("did", PosTag::Verb),
    ("show", PosTag::Verb),
    ("list", PosTag::Verb),
    ("display", PosTag::Verb),
    ("give", PosTag::Verb),
    ("find", PosTag::Verb),
    ("get", PosTag::Verb),
    ("tell", PosTag::Verb),
    ("count", PosTag::Verb),
    ("return", PosTag::Verb),
    ("compare", PosTag::Verb),
    ("rank", PosTag::Verb),
    ("sort", PosTag::Verb),
    ("order", PosTag::Verb),
    ("group", PosTag::Verb),
    ("filter", PosTag::Verb),
    ("more", PosTag::Comparative),
    ("less", PosTag::Comparative),
    ("fewer", PosTag::Comparative),
    ("greater", PosTag::Comparative),
    ("higher", PosTag::Comparative),
    ("lower", PosTag::Comparative),
    ("larger", PosTag::Comparative),
    ("smaller", PosTag::Comparative),
    ("older", PosTag::Comparative),
    ("newer", PosTag::Comparative),
    ("earlier", PosTag::Comparative),
    ("later", PosTag::Comparative),
    ("most", PosTag::Superlative),
    ("least", PosTag::Superlative),
    ("best", PosTag::Superlative),
    ("worst", PosTag::Superlative),
    ("top", PosTag::Superlative),
    ("bottom", PosTag::Superlative),
    ("highest", PosTag::Superlative),
    ("lowest", PosTag::Superlative),
    ("largest", PosTag::Superlative),
    ("smallest", PosTag::Superlative),
    ("biggest", PosTag::Superlative),
    ("maximum", PosTag::Superlative),
    ("minimum", PosTag::Superlative),
    ("latest", PosTag::Superlative),
    ("earliest", PosTag::Superlative),
    ("newest", PosTag::Superlative),
    ("oldest", PosTag::Superlative),
    ("very", PosTag::Adv),
    ("also", PosTag::Adv),
    ("only", PosTag::Adv),
    ("just", PosTag::Adv),
    ("too", PosTag::Adv),
    ("respectively", PosTag::Adv),
    ("average", PosTag::Adj),
    ("total", PosTag::Adj),
    ("overall", PosTag::Adj),
    ("distinct", PosTag::Adj),
    ("unique", PosTag::Adj),
    ("different", PosTag::Adj),
];

fn lexicon_lookup(word: &str) -> Option<PosTag> {
    LEXICON.iter().find(|(w, _)| *w == word).map(|(_, t)| *t)
}

/// Suffix-based fallback for open-class words.
fn suffix_tag(word: &str) -> PosTag {
    if word.ends_with("est") && word.len() > 4 {
        PosTag::Superlative
    } else if word.ends_with("er") && word.len() > 4 {
        // "customer", "number" are nouns; heuristically require a known
        // adjectival base to call it comparative — default to Noun.
        PosTag::Noun
    } else if word.ends_with("ly") && word.len() > 3 {
        PosTag::Adv
    } else if (word.ends_with("ing") || word.ends_with("ed")) && word.len() > 4 {
        PosTag::Verb
    } else if word.ends_with("ous")
        || word.ends_with("ful")
        || word.ends_with("ive")
        || word.ends_with("able")
        || word.ends_with("al") && word.len() > 5
    {
        PosTag::Adj
    } else {
        PosTag::Noun
    }
}

/// Tag a token stream.
///
/// Pipeline: closed-class lexicon → suffix rules → contextual repairs
/// (e.g. a `Verb` directly after a `Det` is re-tagged `Noun`:
/// "the count of orders").
///
/// ```
/// use nlidb_nlp::{tokenize, pos::{tag, PosTag}};
/// let t = tag(&tokenize("show the largest order"));
/// assert_eq!(t[2].tag, PosTag::Superlative);
/// assert_eq!(t[3].tag, PosTag::Noun);
/// ```
pub fn tag(tokens: &[Token]) -> Vec<TaggedToken> {
    let mut out: Vec<TaggedToken> = tokens
        .iter()
        .map(|t| {
            let tag = match t.kind {
                TokenKind::Number => PosTag::Num,
                TokenKind::Quoted => PosTag::Quoted,
                TokenKind::Punct => PosTag::Punct,
                TokenKind::Word => lexicon_lookup(&t.norm).unwrap_or_else(|| suffix_tag(&t.norm)),
            };
            TaggedToken {
                token: t.clone(),
                tag,
            }
        })
        .collect();

    // Contextual repair rules, applied in one left-to-right pass.
    for i in 0..out.len() {
        // Rule 1: Det + Verb → Det + Noun ("the count", "the order").
        if i > 0 && out[i].tag == PosTag::Verb && out[i - 1].tag == PosTag::Det {
            out[i].tag = PosTag::Noun;
        }
        // Rule 2: Prep + Verb → Prep + Noun ("by order", "of count").
        if i > 0 && out[i].tag == PosTag::Verb && out[i - 1].tag == PosTag::Prep {
            out[i].tag = PosTag::Noun;
        }
        // Rule 3: sentence-initial Verb stays a verb (imperative), but a
        // Verb directly before a Prep that is not utterance-initial and
        // follows a Noun is likely a noun ("orders from Canada" after
        // "show" is handled by rule 4 below instead).
        // Rule 4: Noun + Verb(+s) + Noun keeps Verb (relationship verb).
        // Rule 5: "order/group/sort/rank/count" following a noun and
        // followed by "by" is a verb; otherwise noun.
        if out[i].tag == PosTag::Verb
            && matches!(out[i].norm(), "order" | "group" | "sort" | "rank" | "count")
        {
            let followed_by_by = out.get(i + 1).map(|n| n.norm() == "by").unwrap_or(false);
            let first = i == 0;
            if !followed_by_by && !first {
                out[i].tag = PosTag::Noun;
            }
        }
        // Rule 6: "more/less/fewer … than" stays Comparative; a bare
        // "more" before a noun acts as a determiner-ish quantifier, keep.
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags(s: &str) -> Vec<PosTag> {
        tag(&tokenize(s)).into_iter().map(|t| t.tag).collect()
    }

    #[test]
    fn imperative_verb_kept() {
        let t = tags("show customers");
        assert_eq!(t[0], PosTag::Verb);
        assert_eq!(t[1], PosTag::Noun);
    }

    #[test]
    fn det_verb_repair() {
        let t = tag(&tokenize("the count of orders"));
        assert_eq!(t[1].tag, PosTag::Noun, "'count' after 'the' is a noun");
    }

    #[test]
    fn order_by_is_verbish() {
        let t = tag(&tokenize("customers order by name"));
        assert_eq!(t[1].tag, PosTag::Verb);
    }

    #[test]
    fn order_as_noun() {
        let t = tag(&tokenize("show orders from Canada"));
        // "orders" is suffix-tagged noun (plural, not in lexicon).
        assert_eq!(t[1].tag, PosTag::Noun);
    }

    #[test]
    fn superlative_and_comparative() {
        let t = tags("largest revenue more than 10");
        assert_eq!(t[0], PosTag::Superlative);
        assert_eq!(t[2], PosTag::Comparative);
        assert_eq!(t[4], PosTag::Num);
    }

    #[test]
    fn suffix_superlative() {
        let t = tags("cheapest product");
        assert_eq!(t[0], PosTag::Superlative);
    }

    #[test]
    fn negation_words() {
        let t = tags("customers without orders");
        assert_eq!(t[1], PosTag::Neg);
    }

    #[test]
    fn wh_words() {
        let t = tags("which region has the highest sales");
        assert_eq!(t[0], PosTag::Wh);
        assert_eq!(t[4], PosTag::Superlative);
    }

    #[test]
    fn quoted_and_punct() {
        let t = tags("city = 'Austin'");
        assert_eq!(t[1], PosTag::Punct);
        assert_eq!(t[2], PosTag::Quoted);
    }
}
