//! String similarity measures used for fuzzy entity matching.
//!
//! The index crate ranks candidate matches between user mentions and
//! schema/data vocabulary with a blend of these measures (SODA uses
//! exact+fuzzy lookups; NaLIR uses WordNet similarity, approximated in
//! [`crate::lexicon`]).

/// Levenshtein edit distance between two strings (char-based).
///
/// ```
/// assert_eq!(nlidb_nlp::levenshtein("kitten", "sitting"), 3);
/// assert_eq!(nlidb_nlp::levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic program, pre-sized (perf-book: avoid realloc).
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in `[0, 1]`: `1 - dist / max_len`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = vec![false; a.len()];
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let a_seq: Vec<char> = a
        .iter()
        .zip(&a_matched)
        .filter(|(_, m)| **m)
        .map(|(c, _)| *c)
        .collect();
    let b_seq: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|(_, m)| **m)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = a_seq.iter().zip(&b_seq).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity in `[0, 1]` with the standard prefix scale
/// of 0.1 over at most 4 common leading characters.
///
/// ```
/// let s = nlidb_nlp::jaro_winkler("customer", "customers");
/// assert!(s > 0.95);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Character n-gram Dice coefficient in `[0, 1]`.
///
/// Strings shorter than `n` compare by equality. Uses sorted gram
/// vectors with two-pointer intersection (no hashing needed).
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    let grams = |s: &str| -> Vec<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < n {
            return vec![s.to_string()];
        }
        let mut v: Vec<String> = chars.windows(n).map(|w| w.iter().collect()).collect();
        v.sort_unstable();
        v
    };
    let ga = grams(a);
    let gb = grams(b);
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

/// Token-set overlap ratio in `[0, 1]`: `|A ∩ B| / max(|A|, |B|)` over
/// whitespace-split, lowercased tokens. Good for multi-word mentions
/// where order differs ("sales total" vs "total sales").
pub fn token_set_ratio(a: &str, b: &str) -> f64 {
    let set = |s: &str| -> Vec<String> {
        let mut v: Vec<String> = s.split_whitespace().map(|w| w.to_lowercase()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let sa = set(a);
    let sb = set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.iter().filter(|w| sb.binary_search(w).is_ok()).count();
    inter as f64 / sa.len().max(sb.len()) as f64
}

/// Blended mention-vs-vocabulary score used by the index: the maximum
/// of Jaro-Winkler, trigram Dice, and token-set ratio, so both
/// character-level typos and word-order variation are tolerated.
pub fn mention_score(mention: &str, candidate: &str) -> f64 {
    jaro_winkler(mention, candidate)
        .max(ngram_dice(mention, candidate, 3))
        .max(token_set_ratio(mention, candidate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(
            levenshtein("orders", "order"),
            levenshtein("order", "orders")
        );
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert!(edit_similarity("abc", "xyz") <= 0.0 + 1e-9);
    }

    #[test]
    fn jaro_winkler_reference() {
        // Classic reference pair: MARTHA/MARHTA ≈ 0.9611.
        let s = jaro_winkler("martha", "marhta");
        assert!((s - 0.9611).abs() < 0.001, "got {s}");
        // DIXON/DICKSONX ≈ 0.8133 (jw).
        let s = jaro_winkler("dixon", "dicksonx");
        assert!((s - 0.8133).abs() < 0.001, "got {s}");
    }

    #[test]
    fn jaro_winkler_identity_and_disjoint() {
        assert_eq!(jaro_winkler("same", "same"), 1.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn ngram_dice_behaviour() {
        assert_eq!(ngram_dice("night", "night", 2), 1.0);
        let s = ngram_dice("night", "nacht", 2);
        assert!(s > 0.0 && s < 1.0);
        // Short strings fall back to equality.
        assert_eq!(ngram_dice("a", "a", 3), 1.0);
        assert_eq!(ngram_dice("a", "b", 3), 0.0);
    }

    #[test]
    fn token_set_handles_reorder() {
        assert_eq!(token_set_ratio("total sales", "sales total"), 1.0);
        assert!(token_set_ratio("total sales", "total revenue") > 0.0);
        assert_eq!(token_set_ratio("", ""), 1.0);
    }

    #[test]
    fn mention_score_tolerates_typos_and_plural() {
        assert!(mention_score("custmer", "customer") > 0.85);
        assert!(mention_score("customers", "customer") > 0.9);
        assert!(mention_score("region sales", "sales region") > 0.99);
        assert!(mention_score("zebra", "customer") < 0.5);
    }

    #[test]
    fn similarity_in_unit_interval() {
        let pairs = [
            ("a", "b"),
            ("abc", "abcd"),
            ("hello world", "world hello"),
            ("", "x"),
        ];
        for (a, b) in pairs {
            for s in [
                jaro_winkler(a, b),
                ngram_dice(a, b, 3),
                token_set_ratio(a, b),
            ] {
                assert!((0.0..=1.0).contains(&s), "{a} vs {b} gave {s}");
            }
        }
    }
}
