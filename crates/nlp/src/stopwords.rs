//! English stopword list tuned for database question answering.
//!
//! The list deliberately *excludes* words that carry query semantics in
//! NLIDB ("by", "than", "not", "between", "top") even though classic IR
//! stoplists contain them — pattern-based interpreters key off exactly
//! those words (SQAK-style "total … by …" templates).

/// Words filtered out before entity lookup.
static STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "from", "with", "about", "as", "into",
    "is", "are", "was", "were", "be", "been", "being", "am", "do", "does", "did", "doing", "have",
    "has", "had", "having", "i", "me", "my", "we", "our", "you", "your", "he", "him", "his", "she",
    "her", "it", "its", "they", "them", "their", "this", "that", "these", "those", "there", "here",
    "what", "which", "who", "whom", "whose", "when", "where", "why", "how", "can", "could", "will",
    "would", "shall", "should", "may", "might", "must", "please", "show", "give", "get", "find",
    "list", "display", "tell", "want", "need", "like", "see", "let", "us", "all", "any", "some",
    "each", "every", "also", "so", "too", "very", "just", "only", "own", "same", "s", "t", "don",
    "now", "and", "or", "if", "then", "else", "out", "up", "down", "again", "further", "once",
    "many", "much",
];

/// Is `word` (already lowercased) a stopword?
///
/// ```
/// assert!(nlidb_nlp::is_stopword("the"));
/// assert!(!nlidb_nlp::is_stopword("revenue"));
/// assert!(!nlidb_nlp::is_stopword("by")); // query-bearing in NLIDB
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Remove stopwords from a token stream of lowercased words.
pub fn remove_stopwords<'a>(words: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    words.into_iter().filter(|w| !is_stopword(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_bearing_words_kept() {
        for w in [
            "by", "than", "not", "between", "top", "total", "average", "most", "least",
        ] {
            assert!(!is_stopword(w), "{w} must be kept");
        }
    }

    #[test]
    fn classic_stopwords_removed() {
        for w in ["the", "of", "is", "show", "please", "a"] {
            assert!(is_stopword(w), "{w} must be removed");
        }
    }

    #[test]
    fn remove_stopwords_filters() {
        let v = remove_stopwords(["show", "me", "the", "revenue", "by", "region"]);
        assert_eq!(v, vec!["revenue", "by", "region"]);
    }
}
