//! Literal recognition: numbers (including number words and magnitude
//! suffixes), dates, and comparison cue phrases.
//!
//! Pattern-based systems (SQAK-class) and entity-based systems alike
//! must turn "more than two million", "in 2019", and "at least 5" into
//! typed constants plus comparison operators.

/// A comparison operator cued by natural language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonCue {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// BETWEEN lo AND hi
    Between,
}

impl ComparisonCue {
    /// SQL operator text.
    pub fn sql(&self) -> &'static str {
        match self {
            ComparisonCue::Gt => ">",
            ComparisonCue::Ge => ">=",
            ComparisonCue::Lt => "<",
            ComparisonCue::Le => "<=",
            ComparisonCue::Eq => "=",
            ComparisonCue::Ne => "<>",
            ComparisonCue::Between => "BETWEEN",
        }
    }
}

/// Detect a comparison cue at the start of `words` (lowercased).
/// Returns the cue and how many words it consumed.
///
/// ```
/// use nlidb_nlp::literal::{comparison_cue, ComparisonCue};
/// assert_eq!(comparison_cue(&["more", "than", "5"]), Some((ComparisonCue::Gt, 2)));
/// assert_eq!(comparison_cue(&["at", "least", "3"]), Some((ComparisonCue::Ge, 2)));
/// ```
pub fn comparison_cue(words: &[&str]) -> Option<(ComparisonCue, usize)> {
    let w0 = *words.first()?;
    let w1 = words.get(1).copied().unwrap_or("");
    let w2 = words.get(2).copied().unwrap_or("");
    let two = (w0, w1);

    match two {
        ("more", "than")
        | ("greater", "than")
        | ("higher", "than")
        | ("larger", "than")
        | ("bigger", "than")
        | ("above", _)
            if w1 == "than" || w0 == "above" =>
        {
            Some((ComparisonCue::Gt, if w0 == "above" { 1 } else { 2 }))
        }
        ("less", "than")
        | ("fewer", "than")
        | ("lower", "than")
        | ("smaller", "than")
        | ("below", _)
            if w1 == "than" || w0 == "below" =>
        {
            Some((ComparisonCue::Lt, if w0 == "below" { 1 } else { 2 }))
        }
        ("at", "least") => Some((ComparisonCue::Ge, 2)),
        ("at", "most") => Some((ComparisonCue::Le, 2)),
        ("no", "more") if w2 == "than" => Some((ComparisonCue::Le, 3)),
        ("no", "less") if w2 == "than" => Some((ComparisonCue::Ge, 3)),
        ("not", "equal") => Some((ComparisonCue::Ne, 2)),
        ("other", "than") => Some((ComparisonCue::Ne, 2)),
        ("equal", "to") => Some((ComparisonCue::Eq, 2)),
        ("exactly", _) => Some((ComparisonCue::Eq, 1)),
        ("between", _) => Some((ComparisonCue::Between, 1)),
        ("over", _) => Some((ComparisonCue::Gt, 1)),
        ("under", _) => Some((ComparisonCue::Lt, 1)),
        _ => None,
    }
}

/// Number words zero..twenty plus tens.
static NUMBER_WORDS: &[(&str, f64)] = &[
    ("zero", 0.0),
    ("one", 1.0),
    ("two", 2.0),
    ("three", 3.0),
    ("four", 4.0),
    ("five", 5.0),
    ("six", 6.0),
    ("seven", 7.0),
    ("eight", 8.0),
    ("nine", 9.0),
    ("ten", 10.0),
    ("eleven", 11.0),
    ("twelve", 12.0),
    ("thirteen", 13.0),
    ("fourteen", 14.0),
    ("fifteen", 15.0),
    ("sixteen", 16.0),
    ("seventeen", 17.0),
    ("eighteen", 18.0),
    ("nineteen", 19.0),
    ("twenty", 20.0),
    ("thirty", 30.0),
    ("forty", 40.0),
    ("fifty", 50.0),
    ("sixty", 60.0),
    ("seventy", 70.0),
    ("eighty", 80.0),
    ("ninety", 90.0),
    ("hundred", 100.0),
];

/// Magnitude suffix words.
static MAGNITUDES: &[(&str, f64)] = &[
    ("thousand", 1e3),
    ("k", 1e3),
    ("million", 1e6),
    ("m", 1e6),
    ("billion", 1e9),
    ("b", 1e9),
];

/// Parse a number from one or two lowercased words: digits
/// (`"5"`, `"1,200.5"`), number words (`"five"`), and magnitude forms
/// (`"2 million"`, `"3k"`). Returns the value and words consumed.
///
/// ```
/// use nlidb_nlp::literal::parse_number;
/// assert_eq!(parse_number(&["five"]), Some((5.0, 1)));
/// assert_eq!(parse_number(&["2", "million"]), Some((2e6, 2)));
/// assert_eq!(parse_number(&["3k"]), Some((3e3, 1)));
/// ```
pub fn parse_number(words: &[&str]) -> Option<(f64, usize)> {
    let w0 = *words.first()?;
    let base: f64 = w0
        .replace(',', "")
        .parse::<f64>()
        .ok()
        .or_else(|| NUMBER_WORDS.iter().find(|(w, _)| *w == w0).map(|(_, v)| *v))
        .or_else(|| {
            // Attached magnitude suffix: "3k", "2.5m".
            MAGNITUDES.iter().find_map(|(suf, mul)| {
                w0.strip_suffix(suf)
                    .and_then(|num| num.replace(',', "").parse::<f64>().ok())
                    .map(|v| v * mul)
            })
        })?;
    // Detached magnitude word: "2 million".
    if let Some(w1) = words.get(1) {
        if let Some((_, mul)) = MAGNITUDES.iter().find(|(w, _)| w == w1) {
            return Some((base * mul, 2));
        }
    }
    Some((base, 1))
}

/// A recognized date value at whatever precision the text provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DateValue {
    /// Four-digit year.
    pub year: i32,
    /// Month 1–12 if specified.
    pub month: Option<u8>,
    /// Day 1–31 if specified.
    pub day: Option<u8>,
}

impl DateValue {
    /// Render as an ISO-8601 prefix: `2019`, `2019-03`, or `2019-03-05`.
    pub fn to_iso(&self) -> String {
        match (self.month, self.day) {
            (Some(m), Some(d)) => format!("{:04}-{:02}-{:02}", self.year, m, d),
            (Some(m), None) => format!("{:04}-{:02}", self.year, m),
            _ => format!("{:04}", self.year),
        }
    }

    /// Inclusive [start, end] ISO day range covered by this value.
    pub fn day_range(&self) -> (String, String) {
        match (self.month, self.day) {
            (Some(m), Some(d)) => {
                let iso = format!("{:04}-{:02}-{:02}", self.year, m, d);
                (iso.clone(), iso)
            }
            (Some(m), None) => (
                format!("{:04}-{:02}-01", self.year, m),
                format!(
                    "{:04}-{:02}-{:02}",
                    self.year,
                    m,
                    days_in_month(self.year, m)
                ),
            ),
            _ => (
                format!("{:04}-01-01", self.year),
                format!("{:04}-12-31", self.year),
            ),
        }
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

static MONTHS: &[(&str, u8)] = &[
    ("january", 1),
    ("jan", 1),
    ("february", 2),
    ("feb", 2),
    ("march", 3),
    ("mar", 3),
    ("april", 4),
    ("apr", 4),
    ("may", 5),
    ("june", 6),
    ("jun", 6),
    ("july", 7),
    ("jul", 7),
    ("august", 8),
    ("aug", 8),
    ("september", 9),
    ("sep", 9),
    ("sept", 9),
    ("october", 10),
    ("oct", 10),
    ("november", 11),
    ("nov", 11),
    ("december", 12),
    ("dec", 12),
];

/// Parse a date from lowercased words. Recognizes:
/// `2019`, `2019-03-05`, `march 2019`, `5 march 2019`, `march 5 2019`.
/// Returns the value and words consumed.
pub fn parse_date(words: &[&str]) -> Option<(DateValue, usize)> {
    let w0 = *words.first()?;
    // ISO form in one token.
    if let Some(d) = parse_iso(w0) {
        return Some((d, 1));
    }
    // Bare year 1900–2100.
    if let Ok(y) = w0.parse::<i32>() {
        if (1900..=2100).contains(&y) && w0.len() == 4 {
            return Some((
                DateValue {
                    year: y,
                    month: None,
                    day: None,
                },
                1,
            ));
        }
    }
    // month [day] year | month year
    if let Some((_, m)) = MONTHS.iter().find(|(w, _)| *w == w0) {
        if let Some(w1) = words.get(1) {
            if let Ok(v1) = w1.parse::<i32>() {
                if (1900..=2100).contains(&v1) && w1.len() == 4 {
                    return Some((
                        DateValue {
                            year: v1,
                            month: Some(*m),
                            day: None,
                        },
                        2,
                    ));
                }
                if (1..=31).contains(&v1) {
                    if let Some(w2) = words.get(2) {
                        if let Ok(y) = w2.parse::<i32>() {
                            if (1900..=2100).contains(&y) {
                                return Some((
                                    DateValue {
                                        year: y,
                                        month: Some(*m),
                                        day: Some(v1 as u8),
                                    },
                                    3,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    // day month year
    if let Ok(d) = w0.parse::<i32>() {
        if (1..=31).contains(&d) {
            if let Some(w1) = words.get(1) {
                if let Some((_, m)) = MONTHS.iter().find(|(w, _)| w == w1) {
                    if let Some(w2) = words.get(2) {
                        if let Ok(y) = w2.parse::<i32>() {
                            if (1900..=2100).contains(&y) {
                                return Some((
                                    DateValue {
                                        year: y,
                                        month: Some(*m),
                                        day: Some(d as u8),
                                    },
                                    3,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

fn parse_iso(tok: &str) -> Option<DateValue> {
    let parts: Vec<&str> = tok.split('-').collect();
    match parts.as_slice() {
        [y, m, d] => {
            let year = y.parse().ok()?;
            let month: u8 = m.parse().ok()?;
            let day: u8 = d.parse().ok()?;
            if (1900..=2100).contains(&year) && (1..=12).contains(&month) && (1..=31).contains(&day)
            {
                Some(DateValue {
                    year,
                    month: Some(month),
                    day: Some(day),
                })
            } else {
                None
            }
        }
        [y, m] => {
            let year = y.parse().ok()?;
            let month: u8 = m.parse().ok()?;
            if (1900..=2100).contains(&year) && (1..=12).contains(&month) && y.len() == 4 {
                Some(DateValue {
                    year,
                    month: Some(month),
                    day: None,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_cues() {
        assert_eq!(
            comparison_cue(&["greater", "than"]),
            Some((ComparisonCue::Gt, 2))
        );
        assert_eq!(
            comparison_cue(&["fewer", "than"]),
            Some((ComparisonCue::Lt, 2))
        );
        assert_eq!(
            comparison_cue(&["at", "most"]),
            Some((ComparisonCue::Le, 2))
        );
        assert_eq!(
            comparison_cue(&["no", "more", "than"]),
            Some((ComparisonCue::Le, 3))
        );
        assert_eq!(comparison_cue(&["over"]), Some((ComparisonCue::Gt, 1)));
        assert_eq!(
            comparison_cue(&["between"]),
            Some((ComparisonCue::Between, 1))
        );
        assert_eq!(comparison_cue(&["hello"]), None);
        assert_eq!(comparison_cue(&[]), None);
    }

    #[test]
    fn number_words_and_digits() {
        assert_eq!(parse_number(&["seventeen"]), Some((17.0, 1)));
        assert_eq!(parse_number(&["1,200.5"]), Some((1200.5, 1)));
        assert_eq!(parse_number(&["ninety"]), Some((90.0, 1)));
        assert_eq!(parse_number(&["banana"]), None);
    }

    #[test]
    fn magnitudes() {
        assert_eq!(parse_number(&["2", "million"]), Some((2e6, 2)));
        assert_eq!(parse_number(&["2.5m"]), Some((2.5e6, 1)));
        assert_eq!(parse_number(&["five", "thousand"]), Some((5e3, 2)));
        assert_eq!(parse_number(&["10k"]), Some((1e4, 1)));
    }

    #[test]
    fn dates_bare_year() {
        let (d, n) = parse_date(&["2019"]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.to_iso(), "2019");
        assert_eq!(d.day_range(), ("2019-01-01".into(), "2019-12-31".into()));
    }

    #[test]
    fn dates_iso() {
        let (d, _) = parse_date(&["2019-03-05"]).unwrap();
        assert_eq!(d.to_iso(), "2019-03-05");
        let (d, _) = parse_date(&["2019-03"]).unwrap();
        assert_eq!(d.to_iso(), "2019-03");
        assert_eq!(d.day_range().1, "2019-03-31");
    }

    #[test]
    fn dates_month_name_forms() {
        let (d, n) = parse_date(&["march", "2019"]).unwrap();
        assert_eq!((d.to_iso().as_str(), n), ("2019-03", 2));
        let (d, n) = parse_date(&["march", "5", "2019"]).unwrap();
        assert_eq!((d.to_iso().as_str(), n), ("2019-03-05", 3));
        let (d, n) = parse_date(&["5", "march", "2019"]).unwrap();
        assert_eq!((d.to_iso().as_str(), n), ("2019-03-05", 3));
    }

    #[test]
    fn february_leap_handling() {
        let (d, _) = parse_date(&["2020-02"]).unwrap();
        assert_eq!(d.day_range().1, "2020-02-29");
        let (d, _) = parse_date(&["2019-02"]).unwrap();
        assert_eq!(d.day_range().1, "2019-02-28");
    }

    #[test]
    fn not_dates() {
        assert!(parse_date(&["123"]).is_none());
        assert!(parse_date(&["99999"]).is_none());
        assert!(parse_date(&["apple"]).is_none());
        assert!(parse_date(&["2019-13-01"]).is_none());
    }
}
