//! Lightweight dependency-style parsing.
//!
//! NaLIR-class interpreters consume a parse tree to decide which
//! entity a modifier attaches to and which noun a comparison predicate
//! constrains. A full statistical parser is unnecessary: for the
//! question register ("show X of Y in Z with more than N W") a
//! deterministic head-attachment pass provides the same structure.
//!
//! The algorithm:
//! 1. pick the root — the first main verb, else the first noun;
//! 2. nouns attach to the previous governing noun across a preposition
//!    (`of`, `in`, `by`, `with`, …) with a label derived from the
//!    preposition;
//! 3. adjectives/superlatives attach to the following noun;
//! 4. numbers and quoted literals attach to the nearest preceding
//!    comparative/noun;
//! 5. everything else attaches to the root.

use crate::pos::{PosTag, TaggedToken};

/// Grammatical relation between a node and its head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepLabel {
    /// The root of the utterance.
    Root,
    /// Direct object of the root verb (the main entity asked about).
    Obj,
    /// Prepositional attachment; the preposition is recorded separately.
    PrepMod,
    /// Adjective or superlative modifying a noun.
    AdjMod,
    /// Numeric or quoted literal argument.
    Lit,
    /// Coordination ("and"/"or" sibling).
    Coord,
    /// Anything else (discourse words, determiners).
    Other,
}

/// One node of the dependency tree — one per input token.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// Index of this node (== its token index).
    pub index: usize,
    /// Index of the head node; the root points at itself.
    pub head: usize,
    /// Relation to the head.
    pub label: DepLabel,
    /// The preposition mediating a `PrepMod` attachment, if any.
    pub prep: Option<String>,
}

/// Dependency tree over an utterance.
#[derive(Debug, Clone)]
pub struct DepTree {
    /// One node per token, index-aligned.
    pub nodes: Vec<DepNode>,
    /// Index of the root node, if the utterance is non-empty.
    pub root: Option<usize>,
}

impl DepTree {
    /// All direct dependents of node `head`.
    pub fn children(&self, head: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.head == head && n.index != head)
            .map(|n| n.index)
            .collect()
    }

    /// The chain of heads from `index` to the root (exclusive of self).
    pub fn ancestors(&self, index: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = index;
        let mut guard = 0;
        while guard <= self.nodes.len() {
            let head = self.nodes[cur].head;
            if head == cur {
                break;
            }
            out.push(head);
            cur = head;
            guard += 1;
        }
        out
    }

    /// Does `a` dominate `b` (is an ancestor of it)?
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.ancestors(b).contains(&a)
    }
}

/// Build the dependency tree for a tagged utterance. See module docs
/// for the attachment rules.
pub fn parse_dependencies(tagged: &[TaggedToken]) -> DepTree {
    if tagged.is_empty() {
        return DepTree {
            nodes: Vec::new(),
            root: None,
        };
    }
    let root = tagged
        .iter()
        .position(|t| t.tag == PosTag::Verb)
        .or_else(|| {
            tagged
                .iter()
                .position(|t| matches!(t.tag, PosTag::Noun | PosTag::Adj))
        })
        .unwrap_or(0);

    let mut nodes: Vec<DepNode> = (0..tagged.len())
        .map(|i| DepNode {
            index: i,
            head: root,
            label: DepLabel::Other,
            prep: None,
        })
        .collect();
    nodes[root].label = DepLabel::Root;

    // Track the most recent noun to serve as attachment site.
    let mut last_noun: Option<usize> = None;
    // Pending preposition waiting for its noun complement.
    let mut pending_prep: Option<usize> = None;
    // Pending adjective/superlative waiting for its noun.
    let mut pending_mods: Vec<usize> = Vec::new();
    // Most recent comparative operator (for literal attachment).
    let mut last_op: Option<usize> = None;

    for (i, t) in tagged.iter().enumerate() {
        match t.tag {
            PosTag::Noun => {
                if i != root {
                    if let Some(p) = pending_prep.take() {
                        // Attach across the preposition to the last noun
                        // (or root if none).
                        let site = last_noun.unwrap_or(root);
                        nodes[i].head = site;
                        nodes[i].label = DepLabel::PrepMod;
                        nodes[i].prep = Some(tagged[p].token.norm.clone());
                    } else if let Some(n) = last_noun {
                        // Compound noun continuation or coordination.
                        let coordinated = i >= 2 && tagged[i - 1].tag == PosTag::Conj;
                        nodes[i].head = n;
                        nodes[i].label = if coordinated {
                            DepLabel::Coord
                        } else {
                            DepLabel::Obj
                        };
                    } else {
                        nodes[i].head = root;
                        nodes[i].label = DepLabel::Obj;
                    }
                }
                for m in pending_mods.drain(..) {
                    nodes[m].head = i;
                    nodes[m].label = DepLabel::AdjMod;
                }
                last_noun = Some(i);
            }
            PosTag::Adj | PosTag::Superlative => {
                pending_mods.push(i);
                if t.tag == PosTag::Superlative {
                    last_op = Some(i);
                }
            }
            PosTag::Comparative => {
                last_op = Some(i);
                // A comparative modifies the preceding noun if any.
                if let Some(n) = last_noun {
                    nodes[i].head = n;
                    nodes[i].label = DepLabel::AdjMod;
                }
            }
            PosTag::Prep => {
                pending_prep = Some(i);
                // The preposition itself hangs off the last noun.
                if let Some(n) = last_noun {
                    nodes[i].head = n;
                }
            }
            PosTag::Num | PosTag::Quoted => {
                let site = last_op.or(last_noun).unwrap_or(root);
                if i != site {
                    nodes[i].head = site;
                    nodes[i].label = DepLabel::Lit;
                }
                if let Some(p) = pending_prep.take() {
                    nodes[i].prep = Some(tagged[p].token.norm.clone());
                }
            }
            _ => {}
        }
    }
    // Unconsumed modifiers attach to the last noun or root.
    for m in pending_mods {
        let site = last_noun.unwrap_or(root);
        if m != site {
            nodes[m].head = site;
            nodes[m].label = DepLabel::AdjMod;
        }
    }
    DepTree {
        nodes,
        root: Some(root),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::token::tokenize;

    fn parse(s: &str) -> (Vec<TaggedToken>, DepTree) {
        let tagged = tag(&tokenize(s));
        let tree = parse_dependencies(&tagged);
        (tagged, tree)
    }

    #[test]
    fn root_is_main_verb() {
        let (tagged, tree) = parse("show customers in California");
        assert_eq!(tree.root, Some(0));
        assert_eq!(tagged[0].norm(), "show");
    }

    #[test]
    fn noun_attaches_across_preposition() {
        let (tagged, tree) = parse("show customers in California");
        let cal = tagged
            .iter()
            .position(|t| t.norm() == "california")
            .unwrap();
        let cust = tagged.iter().position(|t| t.norm() == "customers").unwrap();
        assert_eq!(tree.nodes[cal].head, cust);
        assert_eq!(tree.nodes[cal].label, DepLabel::PrepMod);
        assert_eq!(tree.nodes[cal].prep.as_deref(), Some("in"));
    }

    #[test]
    fn adjective_attaches_forward() {
        let (tagged, tree) = parse("largest order amount");
        let largest = 0;
        assert_eq!(tagged[largest].norm(), "largest");
        // "largest" should attach to the noun "order" (next noun).
        let order = tagged.iter().position(|t| t.norm() == "order").unwrap();
        assert_eq!(tree.nodes[largest].head, order);
        assert_eq!(tree.nodes[largest].label, DepLabel::AdjMod);
    }

    #[test]
    fn literal_attaches_to_comparative() {
        let (tagged, tree) = parse("customers with more than 5 orders");
        let more = tagged.iter().position(|t| t.norm() == "more").unwrap();
        let five = tagged.iter().position(|t| t.norm() == "5").unwrap();
        assert_eq!(tree.nodes[five].head, more);
        assert_eq!(tree.nodes[five].label, DepLabel::Lit);
    }

    #[test]
    fn coordination_label() {
        let (tagged, tree) = parse("show name and city of customers");
        let city = tagged.iter().position(|t| t.norm() == "city").unwrap();
        assert_eq!(tree.nodes[city].label, DepLabel::Coord);
    }

    #[test]
    fn ancestors_terminate() {
        let (_, tree) = parse("show total revenue by region for 2019");
        for i in 0..tree.nodes.len() {
            let anc = tree.ancestors(i);
            assert!(anc.len() <= tree.nodes.len());
        }
    }

    #[test]
    fn dominates_relation() {
        let (tagged, tree) = parse("show customers in California");
        let cust = tagged.iter().position(|t| t.norm() == "customers").unwrap();
        let cal = tagged
            .iter()
            .position(|t| t.norm() == "california")
            .unwrap();
        assert!(tree.dominates(cust, cal));
        assert!(!tree.dominates(cal, cust));
    }

    #[test]
    fn empty_tree() {
        let tree = parse_dependencies(&[]);
        assert!(tree.root.is_none());
        assert!(tree.nodes.is_empty());
    }

    #[test]
    fn noun_only_root() {
        let (_, tree) = parse("customers");
        assert_eq!(tree.root, Some(0));
        assert_eq!(tree.nodes[0].label, DepLabel::Root);
    }
}
