//! Phrase chunking over tagged tokens.
//!
//! Entity mentions in NLIDB are usually multi-word noun phrases
//! ("total sales amount", "new york customers"); the chunker groups
//! adjacent tokens into candidate mention spans the entity linkers
//! consume.

use crate::pos::{PosTag, TaggedToken};
use crate::token::Span;

/// The kind of phrase a chunk represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Noun phrase — candidate entity/attribute mention.
    NounPhrase,
    /// Verb group — candidate relationship mention.
    VerbPhrase,
    /// Numeric or quoted literal.
    Literal,
    /// Superlative/comparative operator phrase ("more than", "top").
    Operator,
}

/// A contiguous group of tokens forming one phrase.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Phrase kind.
    pub kind: ChunkKind,
    /// Indices into the tagged-token stream, contiguous and ascending.
    pub token_indices: Vec<usize>,
    /// Covering byte span in the original utterance.
    pub span: Span,
    /// Space-joined normalized text of the chunk.
    pub text: String,
}

impl Chunk {
    fn from_indices(tagged: &[TaggedToken], indices: Vec<usize>, kind: ChunkKind) -> Chunk {
        debug_assert!(!indices.is_empty());
        let span = indices
            .iter()
            .map(|&i| tagged[i].token.span)
            .reduce(|a, b| a.cover(b))
            .expect("non-empty chunk");
        let text = indices
            .iter()
            .map(|&i| tagged[i].token.norm.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        Chunk {
            kind,
            token_indices: indices,
            span,
            text,
        }
    }

    /// Number of tokens in this chunk.
    pub fn len(&self) -> usize {
        self.token_indices.len()
    }

    /// Whether this chunk has no tokens (never true for produced chunks).
    pub fn is_empty(&self) -> bool {
        self.token_indices.is_empty()
    }
}

/// Group tagged tokens into phrase chunks with a finite-state scanner:
///
/// * `(Adj|Noun)+` → noun phrase (determiners are skipped, adjectives
///   are folded into the following noun group);
/// * `Verb+` → verb phrase;
/// * `Num | Quoted` → literal;
/// * `Superlative | Comparative` (plus an immediately following
///   "than") → operator phrase.
///
/// ```
/// use nlidb_nlp::{tokenize, pos::tag, chunk::{chunk, ChunkKind}};
/// let chunks = chunk(&tag(&tokenize("total sales amount by customer region")));
/// assert_eq!(chunks[0].kind, ChunkKind::NounPhrase);
/// assert_eq!(chunks[0].text, "total sales amount");
/// ```
pub fn chunk(tagged: &[TaggedToken]) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < tagged.len() {
        match tagged[i].tag {
            PosTag::Det
            | PosTag::Punct
            | PosTag::Pron
            | PosTag::Adv
            | PosTag::Conj
            | PosTag::Prep
            | PosTag::Wh
            | PosTag::Neg => {
                i += 1;
            }
            PosTag::Adj | PosTag::Noun => {
                let start = i;
                while i < tagged.len() && matches!(tagged[i].tag, PosTag::Adj | PosTag::Noun) {
                    i += 1;
                }
                chunks.push(Chunk::from_indices(
                    tagged,
                    (start..i).collect(),
                    ChunkKind::NounPhrase,
                ));
            }
            PosTag::Verb => {
                let start = i;
                while i < tagged.len() && tagged[i].tag == PosTag::Verb {
                    i += 1;
                }
                chunks.push(Chunk::from_indices(
                    tagged,
                    (start..i).collect(),
                    ChunkKind::VerbPhrase,
                ));
            }
            PosTag::Num | PosTag::Quoted => {
                chunks.push(Chunk::from_indices(tagged, vec![i], ChunkKind::Literal));
                i += 1;
            }
            PosTag::Superlative | PosTag::Comparative => {
                let mut indices = vec![i];
                // Fold an immediately following "than" into the operator.
                if let Some(next) = tagged.get(i + 1) {
                    if next.token.norm == "than" {
                        indices.push(i + 1);
                    }
                }
                let consumed = indices.len();
                chunks.push(Chunk::from_indices(tagged, indices, ChunkKind::Operator));
                i += consumed;
            }
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::token::tokenize;

    fn chunks_of(s: &str) -> Vec<Chunk> {
        chunk(&tag(&tokenize(s)))
    }

    #[test]
    fn noun_phrases_grouped() {
        let c = chunks_of("show total sales amount by customer region");
        let nps: Vec<_> = c
            .iter()
            .filter(|c| c.kind == ChunkKind::NounPhrase)
            .collect();
        assert_eq!(nps.len(), 2);
        assert_eq!(nps[0].text, "total sales amount");
        assert_eq!(nps[1].text, "customer region");
    }

    #[test]
    fn operator_folds_than() {
        let c = chunks_of("customers with more than 5 orders");
        let op = c.iter().find(|c| c.kind == ChunkKind::Operator).unwrap();
        assert_eq!(op.text, "more than");
        let lit = c.iter().find(|c| c.kind == ChunkKind::Literal).unwrap();
        assert_eq!(lit.text, "5");
    }

    #[test]
    fn superlative_is_operator() {
        let c = chunks_of("top products");
        assert_eq!(c[0].kind, ChunkKind::Operator);
        assert_eq!(c[1].kind, ChunkKind::NounPhrase);
    }

    #[test]
    fn verb_phrase() {
        let c = chunks_of("list customers");
        assert_eq!(c[0].kind, ChunkKind::VerbPhrase);
    }

    #[test]
    fn quoted_literal_chunk() {
        let c = chunks_of("customers in 'New York'");
        let lit = c.iter().find(|c| c.kind == ChunkKind::Literal).unwrap();
        assert_eq!(lit.text, "new york");
    }

    #[test]
    fn chunk_spans_cover_tokens() {
        let s = "largest total revenue by region";
        let tagged = tag(&tokenize(s));
        for c in chunk(&tagged) {
            assert!(c.span.start < c.span.end);
            assert!(!c.is_empty());
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn empty_input_no_chunks() {
        assert!(chunks_of("").is_empty());
    }
}
