//! Porter stemming algorithm (M.F. Porter, 1980), implemented in full.
//!
//! Entity-based interpreters match user words against schema and data
//! vocabulary after stemming, so "customers" finds the `customer`
//! table and "shipped" matches a `ship_date` column token.

/// Returns `true` if byte `i` of `w` is a consonant under Porter's
/// definition (y is a consonant when preceded by a vowel-position).
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure m of the prefix `w[..=j]`: the number of VC
/// sequences in its C?(VC)^m V? decomposition.
fn measure(w: &[u8], j: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i <= j {
        if !is_consonant(w, i) {
            break;
        }
        i += 1;
    }
    loop {
        // Skip vowels.
        while i <= j {
            if is_consonant(w, i) {
                break;
            }
            i += 1;
        }
        if i > j {
            return m;
        }
        // Skip consonants.
        while i <= j {
            if !is_consonant(w, i) {
                break;
            }
            i += 1;
        }
        m += 1;
        if i > j {
            return m;
        }
    }
}

/// True if `w[..=j]` contains a vowel.
fn has_vowel(w: &[u8], j: usize) -> bool {
    (0..=j).any(|i| !is_consonant(w, i))
}

/// True if `w[..=j]` ends with a double consonant.
fn ends_double_consonant(w: &[u8], j: usize) -> bool {
    j >= 1 && w[j] == w[j - 1] && is_consonant(w, j)
}

/// True if `w[..=j]` ends consonant-vowel-consonant where the final
/// consonant is not w, x, or y ("cvc" condition enabling e-restoration).
fn ends_cvc(w: &[u8], j: usize) -> bool {
    if j < 2 || !is_consonant(w, j) || is_consonant(w, j - 1) || !is_consonant(w, j - 2) {
        return false;
    }
    !matches!(w[j], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], j: usize, suffix: &str) -> bool {
    let s = suffix.as_bytes();
    if s.len() > j + 1 {
        return false;
    }
    &w[j + 1 - s.len()..=j] == s
}

/// Stem a single lowercase word with the Porter algorithm.
///
/// Words of length ≤ 2 are returned unchanged, as in the original
/// paper. Input is expected to be lowercase ASCII letters; other
/// content is returned unchanged.
///
/// ```
/// use nlidb_nlp::stem::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("customers"), "custom");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w = word.as_bytes().to_vec();
    let mut j = w.len() - 1; // index of last char of current stem

    // ---- Step 1a ----
    if ends_with(&w, j, "sses") || ends_with(&w, j, "ies") {
        j -= 2;
    } else if w[j] == b's' && j >= 1 && w[j - 1] != b's' {
        j -= 1;
    }

    // ---- Step 1b ----
    let mut extra_e = false;
    if ends_with(&w, j, "eed") {
        if measure(&w, j - 3) > 0 {
            j -= 1;
        }
    } else if (ends_with(&w, j, "ed") && has_vowel(&w, j - 2))
        || (ends_with(&w, j, "ing") && j >= 3 && has_vowel(&w, j - 3))
    {
        j -= if ends_with(&w, j, "ed") { 2 } else { 3 };
        if ends_with(&w, j, "at") || ends_with(&w, j, "bl") || ends_with(&w, j, "iz") {
            extra_e = true;
        } else if ends_double_consonant(&w, j) && !matches!(w[j], b'l' | b's' | b'z') {
            j -= 1;
        } else if measure(&w, j) == 1 && ends_cvc(&w, j) {
            extra_e = true;
        }
    }
    if extra_e {
        w.truncate(j + 1);
        w.push(b'e');
        j = w.len() - 1;
    }

    // ---- Step 1c ----
    if w[j] == b'y' && j >= 1 && has_vowel(&w, j - 1) {
        w[j] = b'i';
    }

    // ---- Step 2 ----
    let step2: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    j = apply_rules(&mut w, j, step2);

    // ---- Step 3 ----
    let step3: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    j = apply_rules(&mut w, j, step3);

    // ---- Step 4 ----
    let step4: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suf in step4 {
        if ends_with(&w, j, suf) {
            let stem_end = j - suf.len();
            // Special case: -ion only removable after s or t.
            if measure(&w, stem_end) > 1 {
                j = stem_end;
            }
            break;
        }
    }
    if ends_with(&w, j, "ion") && j >= 3 && matches!(w[j - 3], b's' | b't') {
        let stem_end = j - 3;
        if measure(&w, stem_end) > 1 {
            j = stem_end;
        }
    }

    // ---- Step 5a ----
    if w[j] == b'e' && j >= 1 {
        let m = measure(&w, j - 1);
        if m > 1 || (m == 1 && !ends_cvc(&w, j - 1)) {
            j -= 1;
        }
    }
    // ---- Step 5b ----
    if j >= 1 && w[j] == b'l' && ends_double_consonant(&w, j) && measure(&w, j) > 1 {
        j -= 1;
    }

    w.truncate(j + 1);
    String::from_utf8(w).expect("ascii input stays ascii")
}

/// Apply the first matching (suffix → replacement) rule whose stem has
/// measure > 0; returns the new last index.
fn apply_rules(w: &mut Vec<u8>, j: usize, rules: &[(&str, &str)]) -> usize {
    for (suf, rep) in rules {
        if ends_with(w, j, suf) {
            let stem_end = j - suf.len();
            if measure(w, stem_end) > 0 {
                w.truncate(stem_end + 1);
                w.extend_from_slice(rep.as_bytes());
                return w.len() - 1;
            }
            return j;
        }
    }
    j
}

/// Stem every word of an already-lowercased phrase, joining with a
/// single space. Non-alphabetic tokens pass through unchanged.
pub fn stem_phrase(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(porter_stem)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's published examples.
    #[test]
    fn porter_reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("a"), "a");
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("Sales"), "Sales"); // not lowercase → unchanged
    }

    #[test]
    fn database_vocabulary() {
        assert_eq!(porter_stem("customers"), "custom");
        assert_eq!(porter_stem("customer"), "custom");
        assert_eq!(porter_stem("orders"), porter_stem("order"));
        assert_eq!(porter_stem("shipped"), porter_stem("shipping"));
    }

    #[test]
    fn stem_phrase_joins() {
        assert_eq!(stem_phrase("total sales orders"), "total sale order");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["customer", "region", "revenue", "product", "order"] {
            let once = porter_stem(w);
            assert_eq!(porter_stem(&once), once, "idempotency for {w}");
        }
    }
}
