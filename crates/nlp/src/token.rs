//! Span-preserving tokenizer.
//!
//! The tokenizer is the first stage of every interpreter pipeline. It
//! keeps byte spans into the original utterance so downstream stages
//! (entity linking, clarification dialogs) can point back at exactly
//! what the user typed.

/// Byte range `[start, end)` into the original input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Construct a span; `start <= end` is the caller's contract.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end);
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn cover(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (possibly with internal apostrophe: `don't`).
    Word,
    /// Numeric literal, including decimals and thousands separators.
    Number,
    /// Single- or double-quoted string; `norm` holds the unquoted body.
    Quoted,
    /// Punctuation or symbol character(s).
    Punct,
}

/// One token of the input utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Original surface text.
    pub text: String,
    /// Lowercased (and for `Quoted`, unquoted) form used for matching.
    pub norm: String,
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte span in the original input.
    pub span: Span,
}

impl Token {
    /// Whether this token is the given word, case-insensitively.
    pub fn is_word(&self, w: &str) -> bool {
        self.kind == TokenKind::Word && self.norm == w
    }

    /// Parse the token as `f64` if it is a number.
    pub fn as_number(&self) -> Option<f64> {
        if self.kind == TokenKind::Number {
            self.norm.replace(',', "").parse().ok()
        } else {
            None
        }
    }
}

/// Tokenize an utterance into words, numbers, quoted strings and
/// punctuation, preserving byte spans.
///
/// Rules:
/// * letters (plus internal apostrophes and hyphens) form `Word`s;
/// * digits with optional decimal point and `,` separators form
///   `Number`s (`1,234.5`), including a leading sign when attached;
/// * `'…'` and `"…"` form `Quoted` tokens whose `norm` is the body;
/// * everything else that is not whitespace becomes `Punct`.
///
/// ```
/// use nlidb_nlp::token::{tokenize, TokenKind};
/// let t = tokenize("revenue > 1,500.25 in \"New York\"");
/// assert_eq!(t[2].kind, TokenKind::Number);
/// assert_eq!(t[2].as_number(), Some(1500.25));
/// assert_eq!(t[4].kind, TokenKind::Quoted);
/// assert_eq!(t[4].norm, "new york");
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Decode the real char: punning the lead byte (`bytes[i] as
        // char`) misreads multi-byte sequences and desyncs `i` from
        // char boundaries.
        let c = input[i..].chars().next().expect("i is a char boundary");
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '"' || c == '\'' {
            // A quote only opens a quoted literal if a matching close
            // quote exists; otherwise (e.g. apostrophe) treat as punct.
            if let Some(rel) = input[i + 1..].find(c) {
                let end = i + 1 + rel;
                let body = &input[i + 1..end];
                tokens.push(Token {
                    text: input[i..=end].to_string(),
                    norm: body.to_lowercase(),
                    kind: TokenKind::Quoted,
                    span: Span::new(i, end + 1),
                });
                i = end + 1;
                continue;
            }
        }
        if c.is_ascii_digit()
            || ((c == '-' || c == '+')
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
                && sign_starts_number(&tokens))
        {
            let start = i;
            if c == '-' || c == '+' {
                i += 1;
            }
            let mut seen_dot = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit()
                    || (d == ',' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
                {
                    i += 1;
                } else if d == '.'
                    && !seen_dot
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            let text = &input[start..i];
            tokens.push(Token {
                text: text.to_string(),
                norm: text.to_string(),
                kind: TokenKind::Number,
                span: Span::new(start, i),
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let d = input[i..].chars().next().expect("i is a char boundary");
                let interior = (d == '\'' || d == '-')
                    && input[i + 1..]
                        .chars()
                        .next()
                        .is_some_and(|n| n.is_alphabetic());
                if d.is_alphanumeric() || d == '_' || interior {
                    i += d.len_utf8();
                } else {
                    break;
                }
            }
            let text = &input[start..i];
            tokens.push(Token {
                text: text.to_string(),
                norm: text.to_lowercase(),
                kind: TokenKind::Word,
                span: Span::new(start, i),
            });
            continue;
        }
        // Multi-char comparison operators stay together: >=, <=, !=, <>.
        let two = input.get(i..i + 2);
        let punct_len = match two {
            Some(">=") | Some("<=") | Some("!=") | Some("<>") | Some("==") => 2,
            _ => c.len_utf8(),
        };
        let end = (i + punct_len).min(input.len());
        let text = &input[i..end];
        tokens.push(Token {
            text: text.to_string(),
            norm: text.to_string(),
            kind: TokenKind::Punct,
            span: Span::new(i, end),
        });
        i = end;
    }
    tokens
}

/// A `-`/`+` starts a number only at utterance start or after a
/// non-number context (operator/punct), so `5-3` lexes as `5`, `-`, `3`
/// but `revenue > -3` keeps the sign.
fn sign_starts_number(tokens: &[Token]) -> bool {
    match tokens.last() {
        None => true,
        Some(t) => t.kind == TokenKind::Punct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.norm).collect()
    }

    #[test]
    fn words_lowercase() {
        assert_eq!(norms("Show Customers"), vec!["show", "customers"]);
    }

    #[test]
    fn spans_roundtrip_surface() {
        let input = "Top 5 products by total sales";
        for t in tokenize(input) {
            assert_eq!(&input[t.span.start..t.span.end], t.text);
        }
    }

    #[test]
    fn numbers_with_separators() {
        let t = tokenize("1,234,567.89");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].as_number(), Some(1_234_567.89));
    }

    #[test]
    fn negative_number_after_operator() {
        let t = tokenize("profit < -10.5");
        assert_eq!(t[2].kind, TokenKind::Number);
        assert_eq!(t[2].as_number(), Some(-10.5));
    }

    #[test]
    fn hyphen_between_numbers_is_punct() {
        let t = tokenize("5-3");
        assert_eq!(
            t.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![TokenKind::Number, TokenKind::Punct, TokenKind::Number]
        );
    }

    #[test]
    fn quoted_strings_preserve_body() {
        let t = tokenize("city = 'San Jose'");
        let q = t.last().unwrap();
        assert_eq!(q.kind, TokenKind::Quoted);
        assert_eq!(q.norm, "san jose");
        assert_eq!(q.text, "'San Jose'");
    }

    #[test]
    fn unterminated_quote_is_punct() {
        let t = tokenize("it's");
        // "it's" has an internal apostrophe so it stays one word.
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TokenKind::Word);
        let t2 = tokenize("' lonely");
        assert_eq!(t2[0].kind, TokenKind::Punct);
    }

    #[test]
    fn comparison_operators_stick_together() {
        let t = tokenize("price >= 10");
        assert_eq!(t[1].norm, ">=");
        let t = tokenize("a <> b");
        assert_eq!(t[1].norm, "<>");
    }

    #[test]
    fn hyphenated_words_stay_together() {
        let t = tokenize("year-over-year growth");
        assert_eq!(t[0].norm, "year-over-year");
    }

    #[test]
    fn unicode_words() {
        let t = tokenize("café räksmörgås");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].norm, "café");
    }

    #[test]
    fn span_cover() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.cover(b), Span::new(2, 9));
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }
}
