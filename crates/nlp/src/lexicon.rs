//! Synonym / hypernym lexicon — the WordNet stand-in.
//!
//! NaLIR maps parse-tree nodes to schema elements with a WordNet-based
//! similarity function; the query-relaxation work of Lei et al. bridges
//! colloquial user vocabulary and knowledge-base terms. This module
//! provides the same contract offline: synonym rings, a hypernym tree,
//! and a Wu-Palmer-style similarity over that tree, extensible per
//! domain at build time.

use std::collections::HashMap;

use crate::similarity::mention_score;
use crate::stem::porter_stem;

/// Builder for a [`Lexicon`].
#[derive(Debug, Default)]
pub struct LexiconBuilder {
    synonyms: Vec<Vec<String>>,
    hypernyms: Vec<(String, String)>,
}

impl LexiconBuilder {
    /// Start an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a synonym ring; every member becomes interchangeable.
    pub fn synonyms<I, S>(mut self, ring: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.synonyms
            .push(ring.into_iter().map(|s| s.into().to_lowercase()).collect());
        self
    }

    /// Declare `child` IS-A `parent` in the hypernym tree.
    pub fn hypernym(mut self, child: &str, parent: &str) -> Self {
        self.hypernyms
            .push((child.to_lowercase(), parent.to_lowercase()));
        self
    }

    /// Finalize into an immutable [`Lexicon`].
    pub fn build(self) -> Lexicon {
        let mut ring_of: HashMap<String, usize> = HashMap::new();
        let mut rings: Vec<Vec<String>> = Vec::new();
        for ring in self.synonyms {
            // Merge rings sharing a member (synonymy is transitive here).
            let existing: Vec<usize> = ring
                .iter()
                .filter_map(|w| ring_of.get(w.as_str()).copied())
                .collect();
            let target = if let Some(&first) = existing.first() {
                first
            } else {
                rings.push(Vec::new());
                rings.len() - 1
            };
            for w in ring {
                let prev = ring_of.insert(w.clone(), target);
                if let Some(p) = prev {
                    if p != target {
                        // Move all members of ring p into target.
                        let moved = std::mem::take(&mut rings[p]);
                        for m in moved {
                            ring_of.insert(m.clone(), target);
                            rings[target].push(m);
                        }
                    }
                }
                if !rings[target].contains(&w) {
                    rings[target].push(w);
                }
            }
        }
        let parent: HashMap<String, String> = self.hypernyms.into_iter().collect();
        Lexicon {
            rings,
            ring_of,
            parent,
        }
    }
}

/// Immutable synonym/hypernym lexicon.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    rings: Vec<Vec<String>>,
    ring_of: HashMap<String, usize>,
    parent: HashMap<String, String>,
}

impl Lexicon {
    /// A lexicon pre-loaded with general business-intelligence
    /// vocabulary (the register the survey's BI use cases live in).
    pub fn business_default() -> Lexicon {
        LexiconBuilder::new()
            .synonyms(["revenue", "sales", "turnover", "income", "earnings"])
            .synonyms(["customer", "client", "buyer", "purchaser", "account"])
            .synonyms(["product", "item", "good", "merchandise", "sku"])
            .synonyms(["employee", "staff", "worker", "personnel"])
            .synonyms(["order", "purchase", "transaction"])
            .synonyms(["price", "cost", "amount", "value"])
            .synonyms(["region", "area", "territory", "zone"])
            .synonyms(["city", "town", "municipality"])
            .synonyms(["country", "nation"])
            .synonyms(["quantity", "count", "number", "volume"])
            .synonyms(["supplier", "vendor", "provider"])
            .synonyms(["profit", "margin", "gain"])
            .synonyms(["date", "day", "time"])
            .synonyms(["category", "type", "kind", "class", "segment"])
            .synonyms(["department", "division", "unit"])
            .synonyms(["salary", "wage", "pay", "compensation"])
            .synonyms(["year", "fiscal"])
            .synonyms(["name", "title", "label"])
            .synonyms(["big", "large", "huge"])
            .synonyms(["cheap", "inexpensive", "affordable"])
            .synonyms(["expensive", "costly", "pricey"])
            .hypernym("city", "location")
            .hypernym("region", "location")
            .hypernym("country", "location")
            .hypernym("state", "location")
            .hypernym("customer", "person")
            .hypernym("employee", "person")
            .hypernym("supplier", "organization")
            .hypernym("revenue", "measure")
            .hypernym("profit", "measure")
            .hypernym("price", "measure")
            .hypernym("quantity", "measure")
            .hypernym("salary", "measure")
            .build()
    }

    /// All synonyms of `word` (lowercased), excluding itself.
    /// Falls back to stem-equality if the exact word is unknown.
    pub fn synonyms_of(&self, word: &str) -> Vec<&str> {
        let w = word.to_lowercase();
        match self.ring_index(&w) {
            Some(i) => self.rings[i]
                .iter()
                .filter(|s| **s != w)
                .map(String::as_str)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Ring index for a word, falling back to stem equality with ring
    /// members so inflected forms ("clients") land in their ring.
    fn ring_index(&self, word: &str) -> Option<usize> {
        if let Some(&i) = self.ring_of.get(word) {
            return Some(i);
        }
        // The stem fallback can match several rings ("purchases" stems
        // like both "purchaser" and "purchase"); take the smallest
        // matching key so the winner never depends on `HashMap`
        // iteration order, which varies per process.
        let stem = porter_stem(word);
        self.ring_of
            .iter()
            .filter(|(k, _)| porter_stem(k) == stem)
            .min_by(|(a, _), (b, _)| a.cmp(b))
            .map(|(_, &v)| v)
    }

    /// Are the two words synonyms (or stem-equal)?
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        if porter_stem(&a) == porter_stem(&b) {
            return true;
        }
        match (self.ring_index(&a), self.ring_index(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Chain of hypernym ancestors of `word`, nearest first.
    pub fn hypernym_chain(&self, word: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = word.to_lowercase();
        let mut guard = 0;
        while let Some(p) = self.parent.get(cur.as_str()) {
            out.push(p.as_str());
            cur = p.clone();
            guard += 1;
            if guard > 32 {
                break; // defensive: malformed cyclic input
            }
        }
        out
    }

    /// Wu-Palmer-style similarity in `[0, 1]` over the hypernym tree:
    /// `2*depth(lcs) / (depth(a) + depth(b))` where depth counts edges
    /// from a virtual root. Synonyms score 1. Unrelated words fall back
    /// to a scaled surface similarity.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if self.are_synonyms(a, b) {
            return 1.0;
        }
        // Canonicalize both words to a ring representative so that
        // "client" inherits the taxonomy position of "customer".
        let canon = |w: &str| -> String {
            let lw = w.to_lowercase();
            match self.ring_of.get(lw.as_str()) {
                Some(&i) => self.rings[i]
                    .iter()
                    .find(|m| self.parent.contains_key(*m))
                    .cloned()
                    .unwrap_or(lw),
                None => lw,
            }
        };
        let (ca, cb) = (canon(a), canon(b));
        let mut chain_a = vec![ca.clone()];
        chain_a.extend(self.hypernym_chain(&ca).iter().map(|s| s.to_string()));
        let mut chain_b = vec![cb.clone()];
        chain_b.extend(self.hypernym_chain(&cb).iter().map(|s| s.to_string()));
        // Find lowest common subsumer.
        for (da, wa) in chain_a.iter().enumerate() {
            if let Some(db) = chain_b.iter().position(|wb| wb == wa) {
                let depth_a = chain_a.len() - da; // edges below+1 proxy
                let depth_b = chain_b.len() - db;
                let depth_lcs = chain_a.len() - da;
                let denom = (depth_a + (db + depth_b)) as f64;
                let score = 2.0 * depth_lcs as f64 / denom.max(1.0);
                return score.min(0.9); // related-but-not-synonym cap
            }
        }
        0.5 * mention_score(&a.to_lowercase(), &b.to_lowercase())
    }

    /// Expand a word into itself + synonyms + (optionally) hypernyms —
    /// the relaxation step of Lei et al.
    pub fn expand(&self, word: &str, include_hypernyms: bool) -> Vec<String> {
        let w = word.to_lowercase();
        let mut out = vec![w.clone()];
        out.extend(self.synonyms_of(&w).iter().map(|s| s.to_string()));
        if include_hypernyms {
            out.extend(self.hypernym_chain(&w).iter().map(|s| s.to_string()));
        }
        out
    }

    /// Number of synonym rings (diagnostic).
    pub fn ring_count(&self) -> usize {
        self.rings.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonym_ring_membership() {
        let lex = Lexicon::business_default();
        let syns = lex.synonyms_of("revenue");
        assert!(syns.contains(&"sales"));
        assert!(syns.contains(&"turnover"));
        assert!(!syns.contains(&"revenue"));
    }

    #[test]
    fn synonyms_symmetric() {
        let lex = Lexicon::business_default();
        assert!(lex.are_synonyms("customer", "client"));
        assert!(lex.are_synonyms("client", "customer"));
        assert!(!lex.are_synonyms("customer", "product"));
    }

    #[test]
    fn stem_equality_is_synonymy() {
        let lex = Lexicon::business_default();
        assert!(lex.are_synonyms("customers", "customer"));
        assert!(lex.are_synonyms("orders", "ordering"));
    }

    #[test]
    fn plural_falls_into_ring() {
        let lex = Lexicon::business_default();
        let syns = lex.synonyms_of("clients");
        assert!(syns.contains(&"customer"), "got {syns:?}");
    }

    #[test]
    fn hypernym_chain_walks_up() {
        let lex = Lexicon::business_default();
        assert_eq!(lex.hypernym_chain("city"), vec!["location"]);
        assert!(lex.hypernym_chain("widget").is_empty());
    }

    #[test]
    fn similarity_orders_sensibly() {
        let lex = Lexicon::business_default();
        let syn = lex.similarity("revenue", "sales");
        let related = lex.similarity("city", "region"); // share "location"
        let unrelated = lex.similarity("city", "salary");
        assert_eq!(syn, 1.0);
        assert!(
            related > unrelated,
            "related {related} vs unrelated {unrelated}"
        );
        assert!((0.0..=1.0).contains(&related));
    }

    #[test]
    fn canonicalization_gives_ring_members_taxonomy() {
        let lex = Lexicon::business_default();
        // "client" is not directly in the hypernym map but "customer" is.
        let s = lex.similarity("client", "employee");
        assert!(s > 0.3, "client~employee share 'person': {s}");
    }

    #[test]
    fn expand_with_hypernyms() {
        let lex = Lexicon::business_default();
        let e = lex.expand("city", true);
        assert!(e.contains(&"city".to_string()));
        assert!(e.contains(&"town".to_string()));
        assert!(e.contains(&"location".to_string()));
        let e2 = lex.expand("city", false);
        assert!(!e2.contains(&"location".to_string()));
    }

    #[test]
    fn ring_merge_transitivity() {
        let lex = LexiconBuilder::new()
            .synonyms(["a", "b"])
            .synonyms(["b", "c"])
            .build();
        assert!(lex.are_synonyms("a", "c"));
        assert_eq!(lex.ring_count(), 1);
    }

    #[test]
    fn empty_lexicon_behaves() {
        let lex = LexiconBuilder::new().build();
        assert!(lex.synonyms_of("anything").is_empty());
        assert!(!lex.are_synonyms("alpha", "beta"));
        assert_eq!(lex.ring_count(), 0);
    }
}
