#![warn(missing_docs)]

//! # nlidb-nlp — natural-language substrate
//!
//! Lightweight, dependency-free NLP building blocks used by every
//! interpreter family in the survey taxonomy:
//!
//! * [`token`] — span-preserving tokenizer,
//! * [`stem`] — Porter stemmer,
//! * [`pos`] — lexicon + suffix-rule part-of-speech tagger,
//! * [`mod@chunk`] — noun/verb-phrase chunker,
//! * [`parse`] — lightweight dependency-style parse (head attachment),
//! * [`similarity`] — string similarity measures (Levenshtein,
//!   Jaro-Winkler, n-gram Dice, token-set overlap),
//! * [`literal`] — number / date / comparison literal recognition,
//! * [`lexicon`] — synonym/hypernym lexicon with Wu-Palmer-style
//!   similarity, standing in for WordNet as used by NaLIR and the
//!   query-relaxation work of Lei et al.
//!
//! Entity-based NLIDB systems (SODA, NaLIR, ATHENA) need token spans,
//! heads and attachments rather than a full statistical parser; this
//! crate provides exactly that interface contract so the interpreter
//! crates can be written against a stable, deterministic substrate.

pub mod chunk;
pub mod lexicon;
pub mod literal;
pub mod parse;
pub mod pos;
pub mod similarity;
pub mod stem;
pub mod stopwords;
pub mod token;

pub use chunk::{chunk, Chunk, ChunkKind};
pub use lexicon::{Lexicon, LexiconBuilder};
pub use literal::{parse_date, parse_number, ComparisonCue, DateValue};
pub use parse::{parse_dependencies, DepLabel, DepNode, DepTree};
pub use pos::{tag, PosTag, TaggedToken};
pub use similarity::{
    edit_similarity, jaro_winkler, levenshtein, mention_score, ngram_dice, token_set_ratio,
};
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use token::{tokenize, Span, Token, TokenKind};

/// End-to-end convenience: tokenize, tag, and chunk one utterance.
///
/// ```
/// let a = nlidb_nlp::analyze("show me the total revenue by region");
/// assert!(a.tokens.len() >= 6);
/// assert!(!a.chunks.is_empty());
/// ```
pub fn analyze(text: &str) -> Analysis {
    let tokens = tokenize(text);
    let tagged = tag(&tokens);
    let chunks = chunk(&tagged);
    let tree = parse_dependencies(&tagged);
    Analysis {
        tokens,
        tagged,
        chunks,
        tree,
    }
}

/// The result of [`analyze`]: all substrate views over one utterance.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Raw tokens with byte spans into the original text.
    pub tokens: Vec<Token>,
    /// Tokens with part-of-speech tags.
    pub tagged: Vec<TaggedToken>,
    /// Phrase chunks (noun phrases, verb phrases, …).
    pub chunks: Vec<Chunk>,
    /// Lightweight dependency tree.
    pub tree: DepTree,
}

impl Analysis {
    /// Content words (non-stopword word tokens), lowercased.
    pub fn content_words(&self) -> Vec<String> {
        self.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Word && !is_stopword(&t.norm))
            .map(|t| t.norm.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_produces_consistent_views() {
        let a = analyze("list customers in California with more than 5 orders");
        assert_eq!(a.tokens.len(), a.tagged.len());
        assert_eq!(a.tree.nodes.len(), a.tagged.len());
        let words = a.content_words();
        assert!(words.contains(&"customers".to_string()));
        assert!(words.contains(&"california".to_string()));
        assert!(!words.contains(&"in".to_string()));
    }

    #[test]
    fn analyze_empty_is_empty() {
        let a = analyze("");
        assert!(a.tokens.is_empty());
        assert!(a.chunks.is_empty());
    }
}
