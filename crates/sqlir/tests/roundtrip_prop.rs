//! Property tests: every AST the generators can produce renders to SQL
//! that reparses to the identical AST.

use proptest::prelude::*;

use nlidb_sqlir::ast::{
    AggFunc, BinOp, Expr, Join, JoinKind, Literal, OrderByItem, Query, SelectItem, TableSource,
};
use nlidb_sqlir::parse_query;

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("non-reserved", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "group"
                | "by"
                | "having"
                | "order"
                | "limit"
                | "join"
                | "inner"
                | "left"
                | "outer"
                | "on"
                | "as"
                | "and"
                | "or"
                | "not"
                | "in"
                | "exists"
                | "between"
                | "like"
                | "is"
                | "null"
                | "distinct"
                | "asc"
                | "desc"
                | "true"
                | "false"
                | "union"
        )
    })
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        (-1000i32..1000).prop_map(|i| Literal::Float(i as f64 / 4.0)),
        "[a-zA-Z '][a-zA-Z ']{0,6}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Plus),
        Just(BinOp::Minus),
        Just(BinOp::Mul),
        Just(BinOp::Div),
    ]
}

fn agg_strategy() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        ident_strategy().prop_map(Expr::col),
        (ident_strategy(), ident_strategy()).prop_map(|(t, c)| Expr::qcol(t, c)),
        literal_strategy().prop_map(Expr::Literal),
        (agg_strategy(), ident_strategy()).prop_map(|(f, c)| Expr::agg(f, Expr::col(c))),
        Just(Expr::count_star()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), binop_strategy(), inner.clone()).prop_map(|(l, op, r)| {
                Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r),
                }
            }),
            (
                inner.clone(),
                prop::collection::vec(literal_strategy(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, lits, neg)| Expr::InList {
                    expr: Box::new(e),
                    list: lits.into_iter().map(Expr::Literal).collect(),
                    negated: neg,
                }),
            (inner.clone(), "[a-z%_]{1,5}", any::<bool>()).prop_map(|(e, p, neg)| Expr::Like {
                expr: Box::new(e),
                pattern: p,
                negated: neg,
            }),
            (inner, any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                expr: Box::new(e),
                negated: neg,
            }),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                expr_strategy().prop_map(SelectItem::expr),
                (expr_strategy(), ident_strategy()).prop_map(|(e, a)| SelectItem::aliased(e, a)),
            ],
            1..4,
        ),
        any::<bool>(),
        ident_strategy(),
        prop::option::of((ident_strategy(), expr_strategy(), any::<bool>())),
        prop::option::of(expr_strategy()),
        prop::collection::vec(ident_strategy().prop_map(Expr::col), 0..3),
        prop::option::of(expr_strategy()),
        prop::collection::vec((expr_strategy(), any::<bool>()), 0..3),
        prop::option::of(0u64..1000),
    )
        .prop_map(
            |(select, distinct, from, join, where_clause, group_by, having, order, limit)| Query {
                select,
                distinct,
                from: Some(TableSource::table(from)),
                joins: join
                    .map(|(t, on, left)| {
                        vec![Join {
                            kind: if left {
                                JoinKind::Left
                            } else {
                                JoinKind::Inner
                            },
                            source: TableSource::table(t),
                            on,
                        }]
                    })
                    .unwrap_or_default(),
                where_clause,
                group_by,
                having,
                order_by: order
                    .into_iter()
                    .map(|(expr, asc)| OrderByItem { expr, asc })
                    .collect(),
                limit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_roundtrip(q in query_strategy()) {
        let sql = q.to_string();
        let reparsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(q, reparsed, "sql was: {}", sql);
    }

    #[test]
    fn classification_total(q in query_strategy()) {
        // classify never panics and returns one of the four rungs.
        let c = nlidb_sqlir::classify(&q);
        prop_assert!(nlidb_sqlir::ComplexityClass::all().contains(&c));
    }

    #[test]
    fn nested_query_roundtrip(inner in query_strategy(), outer_tbl in ident_strategy(), col in ident_strategy()) {
        let outer = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table(outer_tbl)),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col(col)),
                subquery: Box::new(inner),
                negated: false,
            }),
            ..Query::default()
        };
        let sql = outer.to_string();
        let reparsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to reparse `{sql}`: {e}"));
        prop_assert_eq!(outer, reparsed);
    }
}
