//! Deterministic SQL rendering.
//!
//! The renderer is the inverse of [`crate::parser`]: `parse(render(q))
//! == q` for every constructible query (property-tested in the parser
//! module). Keywords are upper-case, identifiers pass through
//! unquoted, strings use single quotes with `''` escaping.

use std::fmt;

use crate::ast::{
    BinOp, Expr, Join, JoinKind, Literal, OrderByItem, Query, SelectItem, TableSource, UnaryOp,
};

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // Keep a decimal point so the parser round-trips the type.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Operator precedence for parenthesization (higher binds tighter).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
        BinOp::Plus | BinOp::Minus => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

/// Render `e`, parenthesizing when its top-level operator binds looser
/// than `parent_prec`.
fn fmt_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Postfix predicate forms (IN / BETWEEN / LIKE / IS NULL) bind at
    // comparison level; parenthesize them under tighter contexts so the
    // parser reattaches them to the same operand.
    let is_postfix_pred = matches!(
        e,
        Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Between { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. }
    );
    if is_postfix_pred && parent_prec > 3 {
        f.write_str("(")?;
        fmt_expr(e, 0, f)?;
        return f.write_str(")");
    }
    match e {
        Expr::Column(c) => match &c.table {
            Some(t) => write!(f, "{t}.{}", c.column),
            None => write!(f, "{}", c.column),
        },
        Expr::Literal(l) => write!(f, "{l}"),
        Expr::Binary { left, op, right } => {
            let prec = precedence(*op);
            let need_parens = prec < parent_prec;
            if need_parens {
                f.write_str("(")?;
            }
            fmt_expr(left, prec, f)?;
            write!(f, " {op} ")?;
            // Right side gets prec+1 so same-precedence chains render
            // left-associatively without parens but reparse identically.
            fmt_expr(right, prec + 1, f)?;
            if need_parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                f.write_str("NOT ")?;
                fmt_expr(expr, 6, f)
            }
            UnaryOp::Neg => {
                f.write_str("-")?;
                fmt_expr(expr, 6, f)
            }
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => {
            write!(f, "{}(", func.name())?;
            if *distinct {
                f.write_str("DISTINCT ")?;
            }
            match arg {
                Some(a) => fmt_expr(a, 0, f)?,
                None => f.write_str("*")?,
            }
            f.write_str(")")
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            fmt_expr(expr, 6, f)?;
            write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(item, 0, f)?;
            }
            f.write_str(")")
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            fmt_expr(expr, 6, f)?;
            write!(f, " {}IN ({subquery})", if *negated { "NOT " } else { "" })
        }
        Expr::Exists { subquery, negated } => {
            write!(
                f,
                "{}EXISTS ({subquery})",
                if *negated { "NOT " } else { "" }
            )
        }
        Expr::ScalarSubquery(q) => write!(f, "({q})"),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            fmt_expr(expr, 6, f)?;
            write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
            fmt_expr(low, 4, f)?;
            f.write_str(" AND ")?;
            fmt_expr(high, 4, f)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            fmt_expr(expr, 6, f)?;
            write!(
                f,
                " {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            )
        }
        Expr::IsNull { expr, negated } => {
            fmt_expr(expr, 6, f)?;
            write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableSource::Table { name, alias } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableSource::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.kind {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
        };
        write!(f, "{kw} {} ON {}", self.source, self.on)
    }
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.expr, if self.asc { "ASC" } else { "DESC" })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if self.select.is_empty() {
            f.write_str("*")?;
        } else {
            for (i, item) in self.select.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, ColumnRef};

    #[test]
    fn renders_simple_select() {
        let q = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table("customers")),
            where_clause: Some(Expr::col("city").eq(Expr::str("Austin"))),
            ..Query::default()
        };
        assert_eq!(
            q.to_string(),
            "SELECT * FROM customers WHERE city = 'Austin'"
        );
    }

    #[test]
    fn renders_aggregation() {
        let q = Query {
            select: vec![
                SelectItem::expr(Expr::col("region")),
                SelectItem::aliased(Expr::agg(AggFunc::Sum, Expr::col("revenue")), "total"),
            ],
            from: Some(TableSource::table("sales")),
            group_by: vec![Expr::col("region")],
            order_by: vec![OrderByItem {
                expr: Expr::agg(AggFunc::Sum, Expr::col("revenue")),
                asc: false,
            }],
            limit: Some(5),
            ..Query::default()
        };
        assert_eq!(
            q.to_string(),
            "SELECT region, SUM(revenue) AS total FROM sales GROUP BY region \
             ORDER BY SUM(revenue) DESC LIMIT 5"
        );
    }

    #[test]
    fn renders_join() {
        let q = Query {
            select: vec![SelectItem::expr(Expr::qcol("c", "name"))],
            from: Some(TableSource::Table {
                name: "customers".into(),
                alias: Some("c".into()),
            }),
            joins: vec![Join {
                kind: JoinKind::Inner,
                source: TableSource::Table {
                    name: "orders".into(),
                    alias: Some("o".into()),
                },
                on: Expr::qcol("c", "id").eq(Expr::qcol("o", "customer_id")),
            }],
            ..Query::default()
        };
        assert_eq!(
            q.to_string(),
            "SELECT c.name FROM customers AS c JOIN orders AS o ON c.id = o.customer_id"
        );
    }

    #[test]
    fn renders_nested_in() {
        let inner = Query {
            select: vec![SelectItem::expr(Expr::col("customer_id"))],
            from: Some(TableSource::table("orders")),
            ..Query::default()
        };
        let q = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table("customers")),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col("id")),
                subquery: Box::new(inner),
                negated: true,
            }),
            ..Query::default()
        };
        assert_eq!(
            q.to_string(),
            "SELECT * FROM customers WHERE id NOT IN (SELECT customer_id FROM orders)"
        );
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .or(Expr::col("b").eq(Expr::int(2)))
            .and(Expr::col("c").eq(Expr::int(3)));
        assert_eq!(e.to_string(), "(a = 1 OR b = 2) AND c = 3");
    }

    #[test]
    fn renders_float_with_point() {
        assert_eq!(Literal::Float(5.0).to_string(), "5.0");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn escapes_quotes() {
        assert_eq!(Literal::Str("O'Brien".into()).to_string(), "'O''Brien'");
    }

    #[test]
    fn renders_between_like_isnull() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("price")),
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(9)),
            negated: false,
        };
        assert_eq!(e.to_string(), "price BETWEEN 1 AND 9");
        let e = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: "A%".into(),
            negated: true,
        };
        assert_eq!(e.to_string(), "name NOT LIKE 'A%'");
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("x")),
            negated: true,
        };
        assert_eq!(e.to_string(), "x IS NOT NULL");
    }

    #[test]
    fn renders_count_distinct() {
        let e = Expr::Agg {
            func: AggFunc::Count,
            arg: Some(Box::new(Expr::Column(ColumnRef::bare("city")))),
            distinct: true,
        };
        assert_eq!(e.to_string(), "COUNT(DISTINCT city)");
        assert_eq!(Expr::count_star().to_string(), "COUNT(*)");
    }

    #[test]
    fn renders_from_subquery() {
        let inner = Query {
            select: vec![SelectItem::expr(Expr::col("a"))],
            from: Some(TableSource::table("t")),
            ..Query::default()
        };
        let q = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::Subquery {
                query: Box::new(inner),
                alias: "d".into(),
            }),
            ..Query::default()
        };
        assert_eq!(q.to_string(), "SELECT * FROM (SELECT a FROM t) AS d");
    }
}
