#![warn(missing_docs)]

//! # nlidb-sqlir — SQL intermediate representation
//!
//! The common currency of the whole reproduction: every interpreter
//! family emits this AST, the engine executes it, and the evaluation
//! kit compares generated vs. gold queries with it.
//!
//! * [`ast`] — the query AST (SELECT/WHERE/GROUP BY/HAVING/ORDER
//!   BY/LIMIT, joins, and sub-queries in `IN` / `EXISTS` / scalar /
//!   `FROM` positions),
//! * [`display`] — deterministic SQL rendering,
//! * [`parser`] — recursive-descent parser for the same subset (used
//!   to load gold queries in benchmarks and for round-trip testing),
//! * [`builder`] — fluent construction API used by the interpreters,
//! * [`complexity`] — the survey's §3 four-rung complexity ladder.

pub mod ast;
pub mod builder;
pub mod complexity;
pub mod display;
pub mod parser;

pub use ast::{
    AggFunc, BinOp, ColumnRef, Expr, Join, JoinKind, Literal, OrderByItem, Query, SelectItem,
    TableSource, UnaryOp,
};
pub use builder::QueryBuilder;
pub use complexity::{classify, ComplexityClass};
pub use parser::{parse_query, ParseError};
