//! The SQL abstract syntax tree.
//!
//! The subset covers the survey's full §3 ladder: single-table
//! selection, aggregation with GROUP BY / HAVING / ORDER BY / LIMIT,
//! multi-table joins, and nested sub-queries in `WHERE` (IN / EXISTS /
//! scalar comparisons) and `FROM` positions.

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String (also used for dates in ISO form).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Literal {
    /// Best-effort numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Reference to a column, optionally qualified by table name or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, when qualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT
    Count,
    /// SUM
    Sum,
    /// AVG
    Avg,
    /// MIN
    Min,
    /// MAX
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// All aggregate functions, for enumeration in generators/models.
    pub fn all() -> [AggFunc; 5] {
        [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Constant.
    Literal(Literal),
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op expr`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` renders as `*` (COUNT only).
        arg: Option<Box<Expr>>,
        /// DISTINCT inside the aggregate.
        distinct: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Expr>,
        /// NOT IN when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The sub-query.
        subquery: Box<Query>,
        /// NOT IN when true.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// The sub-query.
        subquery: Box<Query>,
        /// NOT EXISTS when true.
        negated: bool,
    },
    /// Scalar sub-query usable inside comparisons.
    ScalarSubquery(Box<Query>),
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE when true.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL when true.
        negated: bool,
    },
}

impl Expr {
    /// Column shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Qualified column shorthand.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Float literal shorthand.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// String literal shorthand.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// `self op other`.
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// Aggregate call shorthand.
    pub fn agg(func: AggFunc, arg: Expr) -> Expr {
        Expr::Agg {
            func,
            arg: Some(Box::new(arg)),
            distinct: false,
        }
    }

    /// `COUNT(*)` shorthand.
    pub fn count_star() -> Expr {
        Expr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }
    }

    /// Does this expression (recursively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Does this expression (recursively) contain a sub-query?
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Binary { left, right, .. } => {
                left.contains_subquery() || right.contains_subquery()
            }
            Expr::Unary { expr, .. } => expr.contains_subquery(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_subquery() || low.contains_subquery() || high.contains_subquery(),
            Expr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(Expr::contains_subquery)
            }
            Expr::Agg { arg, .. } => arg.as_ref().map(|a| a.contains_subquery()).unwrap_or(false),
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_subquery(),
            _ => false,
        }
    }

    /// Collect all column references in this expression.
    pub fn columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Unary { expr, .. } => expr.columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
            Expr::InSubquery { expr, .. } => expr.columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.columns(out);
                low.columns(out);
                high.columns(out);
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.columns(out),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) | Expr::Literal(_) => {}
        }
    }
}

/// A projected item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Projection without alias.
    pub fn expr(e: Expr) -> SelectItem {
        SelectItem::Expr {
            expr: e,
            alias: None,
        }
    }

    /// Projection with alias.
    pub fn aliased(e: Expr, alias: impl Into<String>) -> SelectItem {
        SelectItem::Expr {
            expr: e,
            alias: Some(alias.into()),
        }
    }
}

/// The FROM-clause source: a base table or a derived table.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Derived table `(SELECT …) AS alias`.
    Subquery {
        /// The derived query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableSource {
    /// Base table shorthand.
    pub fn table(name: impl Into<String>) -> TableSource {
        TableSource::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// The name this source is addressable by (alias, else table name).
    pub fn binding_name(&self) -> &str {
        match self {
            TableSource::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableSource::Subquery { alias, .. } => alias,
        }
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN
    Inner,
    /// LEFT OUTER JOIN
    Left,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join type.
    pub kind: JoinKind,
    /// Joined source.
    pub source: TableSource,
    /// ON condition.
    pub on: Expr,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending when true.
    pub asc: bool,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Projected items (empty means `SELECT *` is NOT implied; builders
    /// must push at least one item or `Wildcard`).
    pub select: Vec<SelectItem>,
    /// SELECT DISTINCT when true.
    pub distinct: bool,
    /// FROM source (None only for expression-less probes in tests).
    pub from: Option<TableSource>,
    /// JOIN clauses in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl Query {
    /// Does any clause contain a sub-query (including FROM subqueries)?
    pub fn has_subquery(&self) -> bool {
        let expr_has = |e: &Option<Expr>| e.as_ref().map(Expr::contains_subquery).unwrap_or(false);
        if expr_has(&self.where_clause) || expr_has(&self.having) {
            return true;
        }
        if matches!(self.from, Some(TableSource::Subquery { .. })) {
            return true;
        }
        if self
            .joins
            .iter()
            .any(|j| matches!(j.source, TableSource::Subquery { .. }))
        {
            return true;
        }
        self.select.iter().any(|s| match s {
            SelectItem::Expr { expr, .. } => expr.contains_subquery(),
            SelectItem::Wildcard => false,
        })
    }

    /// Does the query aggregate (explicit GROUP BY or aggregate in the
    /// projection/HAVING)?
    pub fn has_aggregation(&self) -> bool {
        if !self.group_by.is_empty() || self.having.is_some() {
            return true;
        }
        self.select.iter().any(|s| match s {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
    }

    /// Number of base tables referenced at this query's top level
    /// (FROM + JOINs, not descending into sub-queries).
    pub fn table_count(&self) -> usize {
        usize::from(self.from.is_some()) + self.joins.len()
    }

    /// All sub-queries directly nested in this query.
    pub fn direct_subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        fn from_expr<'a>(e: &'a Expr, out: &mut Vec<&'a Query>) {
            match e {
                Expr::InSubquery { subquery, expr, .. } => {
                    out.push(subquery);
                    from_expr(expr, out);
                }
                Expr::Exists { subquery, .. } => out.push(subquery),
                Expr::ScalarSubquery(q) => out.push(q),
                Expr::Binary { left, right, .. } => {
                    from_expr(left, out);
                    from_expr(right, out);
                }
                Expr::Unary { expr, .. } => from_expr(expr, out),
                Expr::Between {
                    expr, low, high, ..
                } => {
                    from_expr(expr, out);
                    from_expr(low, out);
                    from_expr(high, out);
                }
                Expr::InList { expr, list, .. } => {
                    from_expr(expr, out);
                    for e in list {
                        from_expr(e, out);
                    }
                }
                Expr::Agg { arg, .. } => {
                    if let Some(a) = arg {
                        from_expr(a, out);
                    }
                }
                Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => from_expr(expr, out),
                Expr::Column(_) | Expr::Literal(_) => {}
            }
        }
        if let Some(w) = &self.where_clause {
            from_expr(w, &mut out);
        }
        if let Some(h) = &self.having {
            from_expr(h, &mut out);
        }
        for s in &self.select {
            if let SelectItem::Expr { expr, .. } = s {
                from_expr(expr, &mut out);
            }
        }
        if let Some(TableSource::Subquery { query, .. }) = &self.from {
            out.push(query);
        }
        for j in &self.joins {
            if let TableSource::Subquery { query, .. } = &j.source {
                out.push(query);
            }
        }
        out
    }

    /// Maximum nesting depth: 0 for a flat query.
    pub fn nesting_depth(&self) -> usize {
        self.direct_subqueries()
            .iter()
            .map(|q| 1 + q.nesting_depth())
            .max()
            .unwrap_or(0)
    }

    /// Every base-table name referenced anywhere in the query —
    /// FROM/JOIN sources at this level plus, recursively, every
    /// sub-query in any position. Order is deterministic (outer before
    /// inner, FROM before JOINs); duplicates are kept so callers can
    /// count references. The inspection entry point the validation
    /// layer (`nli-core::validate`) resolves schema references from.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(q: &Query, out: &mut Vec<String>) {
            if let Some(TableSource::Table { name, .. }) = &q.from {
                out.push(name.clone());
            }
            for j in &q.joins {
                if let TableSource::Table { name, .. } = &j.source {
                    out.push(name.clone());
                }
            }
            // direct_subqueries covers FROM/JOIN derived tables too,
            // so every sub-query is walked exactly once.
            for sq in q.direct_subqueries() {
                walk(sq, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Every column reference in the query, recursively including all
    /// sub-queries: projections, join conditions, WHERE/HAVING,
    /// GROUP BY, ORDER BY. Deterministic order; duplicates kept.
    pub fn referenced_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        fn walk(q: &Query, out: &mut Vec<ColumnRef>) {
            for s in &q.select {
                if let SelectItem::Expr { expr, .. } = s {
                    expr.columns(out);
                }
            }
            for j in &q.joins {
                j.on.columns(out);
            }
            if let Some(w) = &q.where_clause {
                w.columns(out);
            }
            for g in &q.group_by {
                g.columns(out);
            }
            if let Some(h) = &q.having {
                h.columns(out);
            }
            for o in &q.order_by {
                o.expr.columns(out);
            }
            for sq in q.direct_subqueries() {
                walk(sq, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Every `column = 'string'` equality in the query (recursively,
    /// WHERE and HAVING, either operand order), as
    /// `(column reference, literal value)`. These are the value
    /// bindings an interpreter committed to — the validation layer
    /// checks each one is actually grounded in the data.
    pub fn string_equalities(&self) -> Vec<(ColumnRef, String)> {
        let mut out = Vec::new();
        fn from_expr(e: &Expr, out: &mut Vec<(ColumnRef, String)>) {
            match e {
                Expr::Binary {
                    left,
                    op: BinOp::Eq,
                    right,
                } => match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(c), Expr::Literal(Literal::Str(v)))
                    | (Expr::Literal(Literal::Str(v)), Expr::Column(c)) => {
                        out.push((c.clone(), v.clone()));
                    }
                    _ => {
                        from_expr(left, out);
                        from_expr(right, out);
                    }
                },
                Expr::Binary { left, right, .. } => {
                    from_expr(left, out);
                    from_expr(right, out);
                }
                Expr::Unary { expr, .. } => from_expr(expr, out),
                Expr::Between {
                    expr, low, high, ..
                } => {
                    from_expr(expr, out);
                    from_expr(low, out);
                    from_expr(high, out);
                }
                Expr::InList { expr, list, .. } => {
                    from_expr(expr, out);
                    for i in list {
                        from_expr(i, out);
                    }
                }
                _ => {}
            }
        }
        fn walk(q: &Query, out: &mut Vec<(ColumnRef, String)>) {
            if let Some(w) = &q.where_clause {
                from_expr(w, out);
            }
            if let Some(h) = &q.having {
                from_expr(h, out);
            }
            for sq in q.direct_subqueries() {
                walk(sq, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Compact, deterministic plan-shape label: `q` plus one tag per
    /// structural feature, e.g. `q-scan`, `q-join1-agg-sort`,
    /// `q-filter-sub2`. Used to attribute execution cost by plan shape
    /// in profiles — same shape string ⇒ same operator skeleton.
    pub fn shape(&self) -> String {
        let mut s = String::from("q");
        if self.joins.is_empty() {
            s.push_str("-scan");
        } else {
            s.push_str(&format!("-join{}", self.joins.len()));
        }
        if self.where_clause.is_some() {
            s.push_str("-filter");
        }
        if self.has_aggregation() {
            s.push_str("-agg");
        }
        if self.distinct {
            s.push_str("-distinct");
        }
        if !self.order_by.is_empty() {
            s.push_str("-sort");
        }
        if self.limit.is_some() {
            s.push_str("-limit");
        }
        let depth = self.nesting_depth();
        if depth > 0 {
            s.push_str(&format!("-sub{depth}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_query() -> Query {
        Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table("customers")),
            where_clause: Some(Expr::col("city").eq(Expr::str("Austin"))),
            ..Query::default()
        }
    }

    #[test]
    fn flat_query_properties() {
        let q = flat_query();
        assert!(!q.has_subquery());
        assert!(!q.has_aggregation());
        assert_eq!(q.table_count(), 1);
        assert_eq!(q.nesting_depth(), 0);
    }

    #[test]
    fn shape_labels_are_structural() {
        let mut q = flat_query();
        assert_eq!(q.shape(), "q-scan-filter");
        q.where_clause = None;
        assert_eq!(q.shape(), "q-scan");
        q.select = vec![SelectItem::expr(Expr::count_star())];
        q.order_by = vec![OrderByItem {
            expr: Expr::col("city"),
            asc: true,
        }];
        q.limit = Some(5);
        assert_eq!(q.shape(), "q-scan-agg-sort-limit");
    }

    #[test]
    fn aggregation_detection() {
        let mut q = flat_query();
        q.select = vec![SelectItem::expr(Expr::count_star())];
        assert!(q.has_aggregation());
        let mut q2 = flat_query();
        q2.group_by = vec![Expr::col("city")];
        assert!(q2.has_aggregation());
    }

    #[test]
    fn subquery_detection_in_where() {
        let mut q = flat_query();
        q.where_clause = Some(Expr::InSubquery {
            expr: Box::new(Expr::col("id")),
            subquery: Box::new(flat_query()),
            negated: false,
        });
        assert!(q.has_subquery());
        assert_eq!(q.nesting_depth(), 1);
    }

    #[test]
    fn from_subquery_detection() {
        let q = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::Subquery {
                query: Box::new(flat_query()),
                alias: "t".into(),
            }),
            ..Query::default()
        };
        assert!(q.has_subquery());
        assert_eq!(q.nesting_depth(), 1);
    }

    #[test]
    fn nested_depth_two() {
        let inner = Query {
            select: vec![SelectItem::expr(Expr::col("id"))],
            from: Some(TableSource::table("orders")),
            where_clause: Some(Expr::Exists {
                subquery: Box::new(flat_query()),
                negated: false,
            }),
            ..Query::default()
        };
        let outer = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table("customers")),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col("id")),
                subquery: Box::new(inner),
                negated: false,
            }),
            ..Query::default()
        };
        assert_eq!(outer.nesting_depth(), 2);
    }

    #[test]
    fn columns_collection() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .and(Expr::qcol("t", "b").binary(BinOp::Gt, Expr::col("c")));
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[1], ColumnRef::qualified("t", "b"));
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableSource::Table {
            name: "customers".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t.binding_name(), "c");
        assert_eq!(TableSource::table("x").binding_name(), "x");
    }

    #[test]
    fn contains_aggregate_recurses() {
        let e = Expr::agg(AggFunc::Sum, Expr::col("x")).binary(BinOp::Gt, Expr::int(10));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn join_counts_tables() {
        let mut q = flat_query();
        q.joins.push(Join {
            kind: JoinKind::Inner,
            source: TableSource::table("orders"),
            on: Expr::qcol("customers", "id").eq(Expr::qcol("orders", "customer_id")),
        });
        assert_eq!(q.table_count(), 2);
    }
}
