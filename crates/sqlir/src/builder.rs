//! Fluent query construction, used by every interpreter family.

use crate::ast::{AggFunc, Expr, Join, JoinKind, OrderByItem, Query, SelectItem, TableSource};

/// Builder producing a [`Query`].
///
/// ```
/// use nlidb_sqlir::{QueryBuilder, ast::{Expr, AggFunc}};
/// let q = QueryBuilder::from_table("sales")
///     .select_col("region")
///     .select_agg(AggFunc::Sum, Expr::col("revenue"), Some("total"))
///     .group_by(Expr::col("region"))
///     .order_by(Expr::agg(AggFunc::Sum, Expr::col("revenue")), false)
///     .limit(5)
///     .build();
/// assert!(q.to_string().starts_with("SELECT region, SUM(revenue) AS total"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Start from a base table.
    pub fn from_table(name: impl Into<String>) -> Self {
        QueryBuilder {
            query: Query {
                from: Some(TableSource::table(name)),
                ..Query::default()
            },
        }
    }

    /// Start from an aliased base table.
    pub fn from_aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        QueryBuilder {
            query: Query {
                from: Some(TableSource::Table {
                    name: name.into(),
                    alias: Some(alias.into()),
                }),
                ..Query::default()
            },
        }
    }

    /// Start from a derived table.
    pub fn from_subquery(query: Query, alias: impl Into<String>) -> Self {
        QueryBuilder {
            query: Query {
                from: Some(TableSource::Subquery {
                    query: Box::new(query),
                    alias: alias.into(),
                }),
                ..Query::default()
            },
        }
    }

    /// Project `*`.
    pub fn select_star(mut self) -> Self {
        self.query.select.push(SelectItem::Wildcard);
        self
    }

    /// Project a bare column.
    pub fn select_col(mut self, name: impl Into<String>) -> Self {
        self.query.select.push(SelectItem::expr(Expr::col(name)));
        self
    }

    /// Project an arbitrary expression with optional alias.
    pub fn select_expr(mut self, expr: Expr, alias: Option<&str>) -> Self {
        self.query.select.push(match alias {
            Some(a) => SelectItem::aliased(expr, a),
            None => SelectItem::expr(expr),
        });
        self
    }

    /// Project an aggregate with optional alias.
    pub fn select_agg(self, func: AggFunc, arg: Expr, alias: Option<&str>) -> Self {
        self.select_expr(Expr::agg(func, arg), alias)
    }

    /// SELECT DISTINCT.
    pub fn distinct(mut self) -> Self {
        self.query.distinct = true;
        self
    }

    /// Add an inner join.
    pub fn join(mut self, table: impl Into<String>, on: Expr) -> Self {
        self.query.joins.push(Join {
            kind: JoinKind::Inner,
            source: TableSource::table(table),
            on,
        });
        self
    }

    /// Add a left join.
    pub fn left_join(mut self, table: impl Into<String>, on: Expr) -> Self {
        self.query.joins.push(Join {
            kind: JoinKind::Left,
            source: TableSource::table(table),
            on,
        });
        self
    }

    /// AND a predicate into the WHERE clause.
    pub fn and_where(mut self, pred: Expr) -> Self {
        self.query.where_clause = Some(match self.query.where_clause.take() {
            Some(existing) => existing.and(pred),
            None => pred,
        });
        self
    }

    /// Add a GROUP BY expression.
    pub fn group_by(mut self, expr: Expr) -> Self {
        self.query.group_by.push(expr);
        self
    }

    /// AND a predicate into the HAVING clause.
    pub fn and_having(mut self, pred: Expr) -> Self {
        self.query.having = Some(match self.query.having.take() {
            Some(existing) => existing.and(pred),
            None => pred,
        });
        self
    }

    /// Add an ORDER BY item.
    pub fn order_by(mut self, expr: Expr, asc: bool) -> Self {
        self.query.order_by.push(OrderByItem { expr, asc });
        self
    }

    /// Set LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.query.limit = Some(n);
        self
    }

    /// Finish; defaults to `SELECT *` if nothing was projected.
    pub fn build(mut self) -> Query {
        if self.query.select.is_empty() {
            self.query.select.push(SelectItem::Wildcard);
        }
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use crate::parser::parse_query;

    #[test]
    fn builder_defaults_to_star() {
        let q = QueryBuilder::from_table("t").build();
        assert_eq!(q.to_string(), "SELECT * FROM t");
    }

    #[test]
    fn where_predicates_and_together() {
        let q = QueryBuilder::from_table("t")
            .and_where(Expr::col("a").eq(Expr::int(1)))
            .and_where(Expr::col("b").binary(BinOp::Gt, Expr::int(2)))
            .build();
        assert_eq!(q.to_string(), "SELECT * FROM t WHERE a = 1 AND b > 2");
    }

    #[test]
    fn builder_output_parses_back() {
        let q = QueryBuilder::from_aliased("customers", "c")
            .select_expr(Expr::qcol("c", "name"), None)
            .join(
                "orders",
                Expr::qcol("c", "id").eq(Expr::qcol("orders", "customer_id")),
            )
            .and_where(Expr::qcol("orders", "amount").binary(BinOp::GtEq, Expr::float(10.5)))
            .group_by(Expr::qcol("c", "name"))
            .and_having(Expr::count_star().binary(BinOp::Gt, Expr::int(2)))
            .order_by(Expr::count_star(), false)
            .limit(10)
            .build();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn from_subquery_builder() {
        let inner = QueryBuilder::from_table("t").select_col("a").build();
        let q = QueryBuilder::from_subquery(inner, "d").build();
        assert_eq!(q.to_string(), "SELECT * FROM (SELECT a FROM t) AS d");
    }

    #[test]
    fn left_join_and_distinct() {
        let q = QueryBuilder::from_table("a")
            .distinct()
            .select_col("x")
            .left_join("b", Expr::qcol("a", "id").eq(Expr::qcol("b", "a_id")))
            .build();
        assert!(q.to_string().contains("SELECT DISTINCT x"));
        assert!(q.to_string().contains("LEFT JOIN b"));
    }
}
