//! The survey's §3 query-complexity ladder.
//!
//! > "The query complexity can be categorized into 4 groups: simple
//! > selection queries on a single table; aggregation queries on a
//! > single table involving GROUP BY and ORDER BY; queries involving
//! > multiple tables (JOIN); and complex Business Intelligence (BI) or
//! > analytic queries with nested sub-queries."
//!
//! Experiment E1 classifies every generated and gold query with
//! [`classify`] and reports per-class execution accuracy for each
//! interpreter family, reproducing the paper's capability matrix.

use crate::ast::Query;

/// The four complexity rungs of §3, ordered simplest to hardest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComplexityClass {
    /// Simple selection on a single table.
    SingleTableSelection,
    /// Aggregation / GROUP BY / ORDER BY on a single table.
    SingleTableAggregation,
    /// Multiple tables joined.
    MultiTableJoin,
    /// Nested sub-queries (BI / analytic).
    NestedSubquery,
}

impl ComplexityClass {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ComplexityClass::SingleTableSelection => "select",
            ComplexityClass::SingleTableAggregation => "aggregate",
            ComplexityClass::MultiTableJoin => "join",
            ComplexityClass::NestedSubquery => "nested",
        }
    }

    /// All classes in ladder order.
    pub fn all() -> [ComplexityClass; 4] {
        [
            ComplexityClass::SingleTableSelection,
            ComplexityClass::SingleTableAggregation,
            ComplexityClass::MultiTableJoin,
            ComplexityClass::NestedSubquery,
        ]
    }
}

impl std::fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classify a query on the §3 ladder.
///
/// Precedence (hardest wins): nesting anywhere → `NestedSubquery`;
/// more than one base table at top level → `MultiTableJoin`;
/// aggregation / GROUP BY / HAVING / ORDER BY → `SingleTableAggregation`;
/// otherwise `SingleTableSelection`.
///
/// ```
/// use nlidb_sqlir::{parse_query, classify, ComplexityClass};
/// let q = parse_query("SELECT region, SUM(x) FROM s GROUP BY region").unwrap();
/// assert_eq!(classify(&q), ComplexityClass::SingleTableAggregation);
/// ```
pub fn classify(query: &Query) -> ComplexityClass {
    if query.has_subquery() {
        return ComplexityClass::NestedSubquery;
    }
    if query.table_count() > 1 {
        return ComplexityClass::MultiTableJoin;
    }
    if query.has_aggregation() || !query.order_by.is_empty() {
        return ComplexityClass::SingleTableAggregation;
    }
    ComplexityClass::SingleTableSelection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn class_of(sql: &str) -> ComplexityClass {
        classify(&parse_query(sql).unwrap())
    }

    #[test]
    fn selection_class() {
        assert_eq!(
            class_of("SELECT * FROM customers WHERE city = 'Austin'"),
            ComplexityClass::SingleTableSelection
        );
        assert_eq!(
            class_of("SELECT name, age FROM customers WHERE age > 30 AND city = 'NYC'"),
            ComplexityClass::SingleTableSelection
        );
    }

    #[test]
    fn aggregation_class() {
        assert_eq!(
            class_of("SELECT COUNT(*) FROM orders"),
            ComplexityClass::SingleTableAggregation
        );
        assert_eq!(
            class_of("SELECT region, SUM(rev) FROM s GROUP BY region"),
            ComplexityClass::SingleTableAggregation
        );
        // Paper groups ORDER BY with the aggregation rung.
        assert_eq!(
            class_of("SELECT name FROM t ORDER BY name ASC"),
            ComplexityClass::SingleTableAggregation
        );
    }

    #[test]
    fn join_class() {
        assert_eq!(
            class_of("SELECT c.name FROM customers AS c JOIN orders AS o ON c.id = o.cid"),
            ComplexityClass::MultiTableJoin
        );
        // Join + aggregation is still the join rung (harder wins).
        assert_eq!(
            class_of(
                "SELECT c.name, COUNT(*) FROM customers AS c \
                 JOIN orders AS o ON c.id = o.cid GROUP BY c.name"
            ),
            ComplexityClass::MultiTableJoin
        );
    }

    #[test]
    fn nested_class() {
        assert_eq!(
            class_of("SELECT * FROM c WHERE id IN (SELECT cid FROM o)"),
            ComplexityClass::NestedSubquery
        );
        assert_eq!(
            class_of("SELECT * FROM p WHERE price > (SELECT AVG(price) FROM p)"),
            ComplexityClass::NestedSubquery
        );
        assert_eq!(
            class_of("SELECT * FROM (SELECT a FROM t) AS d"),
            ComplexityClass::NestedSubquery
        );
    }

    #[test]
    fn ladder_is_ordered() {
        assert!(ComplexityClass::SingleTableSelection < ComplexityClass::NestedSubquery);
        let all = ComplexityClass::all();
        let mut sorted = all;
        sorted.sort();
        assert_eq!(all, sorted);
    }
}
