//! Recursive-descent parser for the SQL subset of [`crate::ast`].
//!
//! Used to load gold queries in the benchmark suites and to
//! property-test that rendering round-trips (`parse(render(q)) == q`).

use std::fmt;

use crate::ast::{
    AggFunc, BinOp, ColumnRef, Expr, Join, JoinKind, Literal, OrderByItem, Query, SelectItem,
    TableSource, UnaryOp,
};

/// Parse failure with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Approximate token index where the failure occurred.
    pub at_token: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at token {}: {}",
            self.at_token, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(String),
    Str(String),
    Sym(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        at_token: out.len(),
                    });
                }
                if bytes[i] == b'\'' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    // Advance one full UTF-8 char.
                    let ch_len = input[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                    s.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
            out.push(Tok::Str(s));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            out.push(Tok::Num(input[start..i].to_string()));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(input[start..i].to_string()));
        } else {
            let two = input.get(i..i + 2);
            let sym = match two {
                Some(">=") | Some("<=") | Some("<>") | Some("!=") => {
                    i += 2;
                    two.unwrap().to_string()
                }
                _ => {
                    i += 1;
                    c.to_string()
                }
            };
            out.push(Tok::Sym(sym));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.toks.get(self.pos + offset), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if s == sym)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{sym}`")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            at_token: self.pos,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier".into())),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut select = Vec::new();
        loop {
            if self.eat_sym("*") {
                select.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr(0)?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                select.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            Some(self.table_source()?)
        } else {
            None
        };
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek_kw("JOIN") {
                self.pos += 1;
                JoinKind::Inner
            } else if self.peek_kw("INNER") && self.peek_kw_at(1, "JOIN") {
                self.pos += 2;
                JoinKind::Inner
            } else if self.peek_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else {
                break;
            };
            let source = self.table_source()?;
            self.expect_kw("ON")?;
            let on = self.expr(0)?;
            joins.push(Join { kind, source, on });
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr(0)?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr(0)?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek().cloned() {
                Some(Tok::Num(n)) => {
                    self.pos += 1;
                    Some(n.parse::<u64>().map_err(|_| self.err("bad LIMIT".into()))?)
                }
                _ => return Err(self.err("expected number after LIMIT".into())),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            distinct,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_source(&mut self) -> Result<TableSource, ParseError> {
        if self.eat_sym("(") {
            let query = Box::new(self.query()?);
            self.expect_sym(")")?;
            self.expect_kw("AS")?;
            let alias = self.ident()?;
            Ok(TableSource::Subquery { query, alias })
        } else {
            let name = self.ident()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if let Some(Tok::Ident(s)) = self.peek() {
                // Bare alias, as long as it is not a clause keyword.
                if !is_reserved(s) {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                } else {
                    None
                }
            } else {
                None
            };
            Ok(TableSource::Table { name, alias })
        }
    }

    /// Pratt-style expression parsing; `min_prec` uses the same scale
    /// as the renderer (OR=1, AND=2, cmp=3, +-=4, */=5).
    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            // Postfix predicates bind at comparison level (3).
            if min_prec <= 3 {
                let negated = self.peek_kw("NOT")
                    && (self.peek_kw_at(1, "IN")
                        || self.peek_kw_at(1, "BETWEEN")
                        || self.peek_kw_at(1, "LIKE"));
                if negated {
                    self.pos += 1;
                }
                if self.eat_kw("IN") {
                    self.expect_sym("(")?;
                    if self.peek_kw("SELECT") {
                        let sub = Box::new(self.query()?);
                        self.expect_sym(")")?;
                        left = Expr::InSubquery {
                            expr: Box::new(left),
                            subquery: sub,
                            negated,
                        };
                    } else {
                        let mut list = Vec::new();
                        loop {
                            list.push(self.expr(0)?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                        left = Expr::InList {
                            expr: Box::new(left),
                            list,
                            negated,
                        };
                    }
                    continue;
                }
                if self.eat_kw("BETWEEN") {
                    let low = Box::new(self.expr(4)?);
                    self.expect_kw("AND")?;
                    let high = Box::new(self.expr(4)?);
                    left = Expr::Between {
                        expr: Box::new(left),
                        low,
                        high,
                        negated,
                    };
                    continue;
                }
                if self.eat_kw("LIKE") {
                    match self.peek().cloned() {
                        Some(Tok::Str(p)) => {
                            self.pos += 1;
                            left = Expr::Like {
                                expr: Box::new(left),
                                pattern: p,
                                negated,
                            };
                            continue;
                        }
                        _ => return Err(self.err("expected pattern after LIKE".into())),
                    }
                }
                if negated {
                    return Err(self.err("dangling NOT".into()));
                }
                if self.peek_kw("IS") {
                    self.pos += 1;
                    let neg = self.eat_kw("NOT");
                    self.expect_kw("NULL")?;
                    left = Expr::IsNull {
                        expr: Box::new(left),
                        negated: neg,
                    };
                    continue;
                }
            }
            let op = match self.peek() {
                Some(Tok::Sym(s)) => match s.as_str() {
                    "=" => Some(BinOp::Eq),
                    "<>" | "!=" => Some(BinOp::NotEq),
                    "<" => Some(BinOp::Lt),
                    "<=" => Some(BinOp::LtEq),
                    ">" => Some(BinOp::Gt),
                    ">=" => Some(BinOp::GtEq),
                    "+" => Some(BinOp::Plus),
                    "-" => Some(BinOp::Minus),
                    "*" => Some(BinOp::Mul),
                    "/" => Some(BinOp::Div),
                    _ => None,
                },
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("AND") => Some(BinOp::And),
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("OR") => Some(BinOp::Or),
                _ => None,
            };
            let Some(op) = op else { break };
            let prec = match op {
                BinOp::Or => 1,
                BinOp::And => 2,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
                BinOp::Plus | BinOp::Minus => 4,
                BinOp::Mul | BinOp::Div => 5,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let right = self.expr(prec + 1)?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            // NOT EXISTS is handled in primary; bare NOT here.
            if self.peek_kw("EXISTS") {
                self.pos += 1;
                self.expect_sym("(")?;
                let sub = Box::new(self.query()?);
                self.expect_sym(")")?;
                return Ok(Expr::Exists {
                    subquery: sub,
                    negated: true,
                });
            }
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        if self.eat_sym("-") {
            let inner = self.unary()?;
            // Fold negation into numeric literals for round-tripping.
            return Ok(match inner {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(f)) => Expr::Literal(Literal::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                if n.contains('.') {
                    Ok(Expr::Literal(Literal::Float(
                        n.parse().map_err(|_| self.err("bad float".into()))?,
                    )))
                } else {
                    Ok(Expr::Literal(Literal::Int(
                        n.parse().map_err(|_| self.err("bad int".into()))?,
                    )))
                }
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Tok::Sym(s)) if s == "(" => {
                self.pos += 1;
                if self.peek_kw("SELECT") {
                    let q = Box::new(self.query()?);
                    self.expect_sym(")")?;
                    Ok(Expr::ScalarSubquery(q))
                } else {
                    let e = self.expr(0)?;
                    self.expect_sym(")")?;
                    Ok(e)
                }
            }
            Some(Tok::Ident(word)) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Literal::Bool(true)))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Literal::Bool(false)))
                    }
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Literal::Null))
                    }
                    "EXISTS" => {
                        self.pos += 1;
                        self.expect_sym("(")?;
                        let sub = Box::new(self.query()?);
                        self.expect_sym(")")?;
                        Ok(Expr::Exists {
                            subquery: sub,
                            negated: false,
                        })
                    }
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                        // Aggregate only when followed by `(`.
                        if matches!(self.toks.get(self.pos + 1), Some(Tok::Sym(s)) if s == "(") {
                            self.pos += 2;
                            let func = match upper.as_str() {
                                "COUNT" => AggFunc::Count,
                                "SUM" => AggFunc::Sum,
                                "AVG" => AggFunc::Avg,
                                "MIN" => AggFunc::Min,
                                _ => AggFunc::Max,
                            };
                            let distinct = self.eat_kw("DISTINCT");
                            let arg = if self.eat_sym("*") {
                                None
                            } else {
                                Some(Box::new(self.expr(0)?))
                            };
                            self.expect_sym(")")?;
                            Ok(Expr::Agg {
                                func,
                                arg,
                                distinct,
                            })
                        } else {
                            self.column(word)
                        }
                    }
                    _ if is_reserved(&word) => {
                        Err(self.err(format!("unexpected keyword {word} in expression")))
                    }
                    _ => self.column(word),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn column(&mut self, first: String) -> Result<Expr, ParseError> {
        self.pos += 1;
        if self.eat_sym(".") {
            let col = self.ident()?;
            Ok(Expr::Column(ColumnRef::qualified(first, col)))
        } else {
            Ok(Expr::Column(ColumnRef::bare(first)))
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER",
        "LEFT", "OUTER", "ON", "AS", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN", "LIKE", "IS",
        "NULL", "DISTINCT", "ASC", "DESC", "TRUE", "FALSE", "UNION",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(word))
}

/// Parse one SELECT statement (optionally `;`-terminated).
///
/// ```
/// use nlidb_sqlir::parse_query;
/// let q = parse_query("SELECT name FROM customers WHERE city = 'Austin' LIMIT 3").unwrap();
/// assert_eq!(q.limit, Some(3));
/// assert_eq!(q.to_string(), "SELECT name FROM customers WHERE city = 'Austin' LIMIT 3");
/// ```
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.eat_sym(";");
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after query".into()));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let q = parse_query(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let rendered = q.to_string();
        assert_eq!(rendered, sql, "render mismatch");
        let q2 = parse_query(&rendered).unwrap();
        assert_eq!(q, q2, "reparse mismatch");
    }

    #[test]
    fn roundtrips_core_forms() {
        roundtrip("SELECT * FROM customers");
        roundtrip("SELECT name, city FROM customers WHERE age > 30");
        roundtrip("SELECT DISTINCT city FROM customers");
        roundtrip("SELECT region, SUM(revenue) AS total FROM sales GROUP BY region");
        roundtrip("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3");
        roundtrip("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        roundtrip("SELECT * FROM t ORDER BY a ASC, b DESC LIMIT 10");
        roundtrip("SELECT COUNT(*) FROM orders");
        roundtrip("SELECT COUNT(DISTINCT city) FROM customers");
        roundtrip("SELECT c.name FROM customers AS c JOIN orders AS o ON c.id = o.customer_id");
        roundtrip("SELECT * FROM customers AS c LEFT JOIN orders AS o ON c.id = o.customer_id");
        roundtrip("SELECT * FROM t WHERE x BETWEEN 1 AND 9");
        roundtrip("SELECT * FROM t WHERE name LIKE 'A%'");
        roundtrip("SELECT * FROM t WHERE name NOT LIKE 'A%'");
        roundtrip("SELECT * FROM t WHERE x IS NOT NULL");
        roundtrip("SELECT * FROM t WHERE x IN (1, 2, 3)");
        roundtrip("SELECT * FROM t WHERE x NOT IN ('a', 'b')");
    }

    #[test]
    fn roundtrips_nested_queries() {
        roundtrip("SELECT * FROM customers WHERE id IN (SELECT customer_id FROM orders)");
        roundtrip("SELECT * FROM customers WHERE id NOT IN (SELECT customer_id FROM orders)");
        roundtrip(
            "SELECT * FROM customers WHERE EXISTS \
             (SELECT * FROM orders WHERE orders.customer_id = customers.id)",
        );
        roundtrip("SELECT * FROM products WHERE price > (SELECT AVG(price) FROM products)");
        roundtrip("SELECT * FROM (SELECT a FROM t) AS d");
        roundtrip(
            "SELECT * FROM sales WHERE amount > \
             (SELECT AVG(amount) FROM sales WHERE region = 'West') LIMIT 5",
        );
    }

    #[test]
    fn parses_having() {
        let q =
            parse_query("SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 3")
                .unwrap();
        assert!(q.having.is_some());
        roundtrip("SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 3");
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse_query("SELECT * FROM t WHERE a + b * 2 > 10").unwrap();
        // b * 2 binds tighter than +.
        let Some(Expr::Binary {
            left,
            op: BinOp::Gt,
            ..
        }) = q.where_clause
        else {
            panic!("bad shape")
        };
        let Expr::Binary {
            op: BinOp::Plus,
            right,
            ..
        } = *left
        else {
            panic!("bad +")
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_query("SELECT * FROM t WHERE x > -5").unwrap();
        let Some(Expr::Binary { right, .. }) = q.where_clause else {
            panic!()
        };
        assert_eq!(*right, Expr::Literal(Literal::Int(-5)));
    }

    #[test]
    fn string_escape_roundtrip() {
        roundtrip("SELECT * FROM t WHERE name = 'O''Brien'");
    }

    #[test]
    fn bare_alias_supported() {
        let q = parse_query("SELECT c.name FROM customers c").unwrap();
        assert_eq!(
            q.from,
            Some(TableSource::Table {
                name: "customers".into(),
                alias: Some("c".into())
            })
        );
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_query("select name from customers where age >= 21").unwrap();
        assert_eq!(q.select.len(), 1);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_query("SELECT * FROM t LIMIT abc").is_err());
        assert!(parse_query("SELECT * FROM t extra garbage ~").is_err());
        assert!(parse_query("SELECT * FROM t WHERE 'unterminated").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_query("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn null_and_bool_literals() {
        roundtrip("SELECT * FROM t WHERE active = TRUE");
        roundtrip("SELECT * FROM t WHERE deleted = FALSE");
        let q = parse_query("SELECT * FROM t WHERE x = NULL").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn min_max_as_column_names() {
        // MIN not followed by `(` parses as a column.
        let q = parse_query("SELECT min FROM limits_table").unwrap();
        assert_eq!(
            q.select[0],
            SelectItem::Expr {
                expr: Expr::col("min"),
                alias: None
            }
        );
    }
}
