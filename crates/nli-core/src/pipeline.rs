//! The one-call facade: build every index and interpreter for a
//! database, ask questions, get executed answers.

use nlidb_engine::{execute, explain, Database, Explain, ResultSet};
use nlidb_nlp::Lexicon;
use nlidb_obs::TraceBuilder;
use nlidb_ontology::{generate_ontology, JoinGraph, Ontology};
use nlidb_sqlir::Query;
use nlidb_vindex::Indices;

use crate::entity::EntityInterpreter;
use crate::error::InterpretError;
use crate::hybrid::HybridInterpreter;
use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::keyword::KeywordInterpreter;
use crate::neural::{NeuralInterpreter, TrainingExample};
use crate::pattern::PatternInterpreter;

/// Everything interpreters need to know about one database: its
/// ontology, join graph, lexicon, and value/metadata indices.
#[derive(Debug)]
pub struct SchemaContext {
    /// The generated (or supplied) domain ontology.
    pub ontology: Ontology,
    /// Join graph over the ontology's relationships.
    pub graph: JoinGraph,
    /// Synonym/hypernym lexicon.
    pub lexicon: Lexicon,
    /// Value + metadata indices.
    pub indices: Indices,
}

impl SchemaContext {
    /// Build with the default business lexicon and a generated ontology.
    pub fn build(db: &Database) -> SchemaContext {
        Self::build_with_lexicon(db, Lexicon::business_default())
    }

    /// Build with a custom lexicon.
    pub fn build_with_lexicon(db: &Database, lexicon: Lexicon) -> SchemaContext {
        let ontology = generate_ontology(db);
        let graph = JoinGraph::from_ontology(&ontology);
        let indices = Indices::build(db, &ontology, &lexicon);
        SchemaContext {
            ontology,
            graph,
            lexicon,
            indices,
        }
    }
}

/// An executed answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The SQL that was run.
    pub sql: String,
    /// The query AST.
    pub query: Query,
    /// The result rows.
    pub result: ResultSet,
    /// The winning interpretation (confidence + explanation).
    pub interpretation: Interpretation,
    /// Deterministic pre-execution plan estimate (shape, cardinality,
    /// logical cost) — what cost-aware admission reasoned about.
    pub explain: Explain,
}

/// Clarification margin the approved path uses to flag close
/// competitors (same margin E9's dialogue experiment asks at).
const CLARIFY_MARGIN: f64 = 0.15;

/// One candidate the validation loop rejected (or, when every reason
/// is [`crate::validate::Rejection::AmbiguousWithTop`], annotated as a
/// close competitor without being vetoed).
#[derive(Debug, Clone)]
pub struct RejectedCandidate {
    /// The candidate's rank in the family's original confidence order.
    pub rank: usize,
    /// Its rendered SQL.
    pub sql: String,
    /// Every rejection reason, in validation order.
    pub reasons: Vec<crate::validate::Rejection>,
}

impl RejectedCandidate {
    /// True when at least one reason is a veto (anything other than
    /// the ambiguity annotation).
    pub fn is_vetoed(&self) -> bool {
        self.reasons
            .iter()
            .any(|r| !matches!(r, crate::validate::Rejection::AmbiguousWithTop { .. }))
    }
}

/// What the approve step decided: how many candidates were considered,
/// which one won, and why the losers lost. Journaled by `serve` as the
/// audit trail.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// The interpreter family asked.
    pub family: InterpreterKind,
    /// Candidates in the gathered set.
    pub candidate_count: usize,
    /// Original confidence-order rank of the approved candidate
    /// (0 = the pick-first baseline would have chosen the same).
    pub chosen_rank: usize,
    /// Losing candidates with structured reasons, ordered by rank.
    pub rejected: Vec<RejectedCandidate>,
    /// The approved candidate's provenance digest
    /// ([`crate::candidates::Candidate::provenance_digest`]).
    pub provenance_digest: u64,
}

impl ValidationReport {
    /// Candidates actually vetoed by validation (ambiguity annotations
    /// alone don't count).
    pub fn vetoed_count(&self) -> usize {
        self.rejected.iter().filter(|r| r.is_vetoed()).count()
    }
}

/// An [`Answer`] that passed pre-execution validation, with its
/// [`ValidationReport`].
#[derive(Debug, Clone)]
pub struct ApprovedAnswer {
    /// The executed answer.
    pub answer: Answer,
    /// The approve-step audit record.
    pub report: ValidationReport,
}

/// The full NLIDB stack for one database.
pub struct NliPipeline {
    db: Database,
    ctx: SchemaContext,
    keyword: KeywordInterpreter,
    pattern: PatternInterpreter,
    entity: EntityInterpreter,
    neural: NeuralInterpreter,
    hybrid: HybridInterpreter,
}

impl NliPipeline {
    /// Build the standard stack: generated ontology, business lexicon,
    /// all five interpreter families (the neural model starts
    /// untrained; see [`NliPipeline::train_neural`]).
    pub fn standard(db: &Database) -> NliPipeline {
        Self::with_context(db, SchemaContext::build(db))
    }

    /// Build from a pre-built [`SchemaContext`]. This is the hook the
    /// serving runtime uses to attach shared state — e.g. a join-path
    /// cache on the context's graph — before the pipeline freezes it.
    pub fn with_context(db: &Database, ctx: SchemaContext) -> NliPipeline {
        NliPipeline {
            db: db.clone(),
            ctx,
            keyword: KeywordInterpreter::new(),
            pattern: PatternInterpreter::new(),
            entity: EntityInterpreter::new(),
            neural: NeuralInterpreter::untrained(),
            hybrid: HybridInterpreter::new(),
        }
    }

    /// The schema context (for direct interpreter experimentation).
    pub fn context(&self) -> &SchemaContext {
        &self.ctx
    }

    /// The wrapped database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Train the neural (and the hybrid's embedded neural) model.
    pub fn train_neural(&mut self, examples: &[TrainingExample], seed: u64) {
        self.neural = NeuralInterpreter::train(examples, &self.ctx, seed);
        self.hybrid
            .set_neural(NeuralInterpreter::train(examples, &self.ctx, seed));
    }

    /// Builder-style counterpart of [`NliPipeline::train_neural`]:
    /// consume, train, return. Separates the mutable training phase
    /// from the immutable serving phase — after this the pipeline can
    /// go straight behind an `Arc` with no `&mut` access left.
    pub fn into_trained(mut self, examples: &[TrainingExample], seed: u64) -> NliPipeline {
        self.train_neural(examples, seed);
        self
    }

    /// Interpreter by family.
    pub fn interpreter(&self, kind: InterpreterKind) -> &dyn Interpreter {
        match kind {
            InterpreterKind::Keyword => &self.keyword,
            InterpreterKind::Pattern => &self.pattern,
            InterpreterKind::Entity => &self.entity,
            InterpreterKind::Neural => &self.neural,
            InterpreterKind::Hybrid => &self.hybrid,
        }
    }

    /// Ask with the default (hybrid) interpreter and execute.
    pub fn ask(&self, question: &str) -> Result<Answer, InterpretError> {
        self.ask_with(question, InterpreterKind::Hybrid)
    }

    /// Ask with a specific family and execute the best interpretation.
    pub fn ask_with(
        &self,
        question: &str,
        kind: InterpreterKind,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, None, None)
    }

    /// [`NliPipeline::ask_with`], recording per-stage spans into `tb`:
    /// `tokenize` → `link` → `interpret` → `sqlgen` → `execute`, under
    /// one `pipeline` span annotated with the family and the outcome.
    /// The traced path returns exactly what the untraced path returns —
    /// tracing observes the pipeline, it never steers it.
    pub fn ask_with_trace(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, Some(tb), None)
    }

    /// [`NliPipeline::ask_with`] under a logical-cost ceiling: when
    /// the winning plan's estimated cost exceeds `cost_ceiling`, the
    /// query is refused with [`InterpretError::CostExceeded`] *before*
    /// execution — the per-tenant admission hook the serving runtime
    /// enforces.
    pub fn ask_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, None, cost_ceiling)
    }

    /// [`NliPipeline::ask_bounded`], recording per-stage spans into
    /// `tb` like [`NliPipeline::ask_with_trace`].
    pub fn ask_with_trace_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, Some(tb), cost_ceiling)
    }

    /// The one interpretation-and-execution path; `ask_with` passes no
    /// tracer, `ask_with_trace` passes one. The tokenize and link
    /// stages re-run the interpreter's own front half purely to
    /// measure it (interpreters tokenize internally), so they exist
    /// only on the traced path — the untraced path does zero extra
    /// work.
    fn ask_inner(
        &self,
        question: &str,
        kind: InterpreterKind,
        mut tb: Option<&mut TraceBuilder>,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        let pipeline_span = tb.as_deref_mut().map(|t| {
            let s = t.open("pipeline");
            t.annotate(s, "family", kind.label());
            // Stage spans the interpreters perform internally,
            // re-run here so the trace shows where linking evidence
            // came from (Affolter-style stage attribution).
            let tok = t.open("tokenize");
            let tokens = nlidb_nlp::tokenize(question);
            t.annotate(tok, "tokens", tokens.len().to_string());
            t.close(tok);
            let link = t.open("link");
            let mentions = crate::linking::link_mentions(&tokens, &self.ctx);
            t.annotate(link, "mentions", mentions.len().to_string());
            t.close(link);
            s
        });
        let seal = |tb: Option<&mut TraceBuilder>, outcome: &str| {
            if let (Some(t), Some(s)) = (tb, pipeline_span) {
                t.annotate(s, "outcome", outcome);
                t.close(s);
            }
        };

        let interp_span = tb.as_deref_mut().map(|t| t.open("interpret"));
        let interp = self.interpreter(kind).best(question, &self.ctx);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), interp_span) {
            match &interp {
                Some(i) => {
                    t.annotate(s, "confidence", format!("{:.3}", i.confidence));
                    t.annotate(s, "explanation_steps", i.explanation.len().to_string());
                }
                None => t.annotate(s, "result", "no_interpretation"),
            }
            t.close(s);
        }
        let Some(interp) = interp else {
            seal(tb, "no_interpretation");
            return Err(InterpretError::NoInterpretation(question.to_string()));
        };

        let sql_text = interp.sql.to_string();
        if let Some(t) = tb.as_deref_mut() {
            let s = t.open("sqlgen");
            t.annotate(s, "sql", sql_text.as_str());
            t.close(s);
        }

        // Pre-execution plan estimate: recorded on the execute span
        // (annotations never change span costs) and gated by the
        // validation layer's single cost-ceiling enforcement point.
        let plan = explain(&self.db, &interp.sql);
        if let Err(e) = crate::validate::cost_gate(&plan, cost_ceiling) {
            seal(tb, "cost_exceeded");
            return Err(e);
        }

        let exec_span = tb.as_deref_mut().map(|t| {
            let s = t.open("execute");
            t.annotate(s, "plan_shape", plan.shape.as_str());
            t.annotate(s, "est_cost", plan.est_cost.to_string());
            t.annotate(s, "est_rows", plan.est_rows.to_string());
            s
        });
        let result = execute(&self.db, &interp.sql);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), exec_span) {
            match &result {
                Ok(r) => t.annotate(s, "rows", r.rows.len().to_string()),
                Err(e) => t.annotate(s, "error", e.to_string()),
            }
            t.close(s);
        }
        match result {
            Ok(result) => {
                seal(tb, "answered");
                Ok(Answer {
                    sql: sql_text,
                    query: interp.sql.clone(),
                    result,
                    interpretation: interp,
                    explain: plan,
                })
            }
            Err(e) => {
                seal(tb, "execution_error");
                Err(InterpretError::Execution(e.to_string()))
            }
        }
    }

    /// All candidate interpretations from one family (for clarification
    /// flows and experiments).
    pub fn candidates(&self, question: &str, kind: InterpreterKind) -> Vec<Interpretation> {
        self.interpreter(kind).interpret(question, &self.ctx)
    }

    /// A family's ranked top-`k` [`crate::candidates::CandidateSet`]
    /// with token-level provenance — the "Ask" step of
    /// Ask → Plan → Approve.
    pub fn candidate_set(
        &self,
        question: &str,
        kind: InterpreterKind,
        k: usize,
    ) -> crate::candidates::CandidateSet {
        crate::candidates::gather(self.interpreter(kind), question, &self.ctx, k)
    }

    /// Ask with guardrails: gather the family's candidate set, rerank
    /// by confidence then provenance coverage, validate each candidate
    /// *before* execution, and execute the first survivor. See
    /// [`NliPipeline::ask_approved_bounded`] for the full contract.
    pub fn ask_approved(
        &self,
        question: &str,
        kind: InterpreterKind,
    ) -> Result<ApprovedAnswer, InterpretError> {
        self.ask_approved_inner(question, kind, None, None)
    }

    /// [`NliPipeline::ask_approved`] under a logical-cost ceiling: the
    /// ceiling is one validation check among the others
    /// ([`crate::validate::validate_candidate`]), so a too-expensive
    /// top candidate can lose to a cheaper lower-ranked one instead of
    /// refusing outright. Refusal semantics are preserved: when *no*
    /// candidate survives and the best-reranked candidate was vetoed
    /// on cost, the error is [`InterpretError::CostExceeded`] exactly
    /// as the plain bounded path would have raised; otherwise
    /// [`InterpretError::AllCandidatesRejected`] lists every reason.
    pub fn ask_approved_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        cost_ceiling: Option<u64>,
    ) -> Result<ApprovedAnswer, InterpretError> {
        self.ask_approved_inner(question, kind, None, cost_ceiling)
    }

    /// [`NliPipeline::ask_approved`], recording per-stage spans like
    /// [`NliPipeline::ask_with_trace`] plus candidate-level attributes
    /// (`candidates`, `rejected`, `chosen_rank`, rejection labels) on
    /// the pipeline span.
    pub fn ask_approved_with_trace(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
    ) -> Result<ApprovedAnswer, InterpretError> {
        self.ask_approved_inner(question, kind, Some(tb), None)
    }

    /// [`NliPipeline::ask_approved_bounded`] with tracing.
    pub fn ask_approved_with_trace_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
        cost_ceiling: Option<u64>,
    ) -> Result<ApprovedAnswer, InterpretError> {
        self.ask_approved_inner(question, kind, Some(tb), cost_ceiling)
    }

    /// The Ask → Plan → Approve path. Stages mirror [`Self::ask_inner`]
    /// (`pipeline` > `tokenize`/`link`/`interpret`/`sqlgen`/`execute`)
    /// so traces stay comparable; the interpret stage gathers the whole
    /// candidate set, and a validation loop sits between sqlgen and
    /// execute. Everything is deterministic: rerank ties break on
    /// provenance coverage then rendered SQL.
    fn ask_approved_inner(
        &self,
        question: &str,
        kind: InterpreterKind,
        mut tb: Option<&mut TraceBuilder>,
        cost_ceiling: Option<u64>,
    ) -> Result<ApprovedAnswer, InterpretError> {
        let pipeline_span = tb.as_deref_mut().map(|t| {
            let s = t.open("pipeline");
            t.annotate(s, "family", kind.label());
            t.annotate(s, "mode", "approved");
            let tok = t.open("tokenize");
            let tokens = nlidb_nlp::tokenize(question);
            t.annotate(tok, "tokens", tokens.len().to_string());
            t.close(tok);
            let link = t.open("link");
            let mentions = crate::linking::link_mentions(&tokens, &self.ctx);
            t.annotate(link, "mentions", mentions.len().to_string());
            t.close(link);
            s
        });
        let seal = |tb: Option<&mut TraceBuilder>, outcome: &str| {
            if let (Some(t), Some(s)) = (tb, pipeline_span) {
                t.annotate(s, "outcome", outcome);
                t.close(s);
            }
        };

        let interp_span = tb.as_deref_mut().map(|t| t.open("interpret"));
        let set = self.candidate_set(question, kind, crate::candidates::DEFAULT_TOP_K);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), interp_span) {
            if set.is_empty() {
                t.annotate(s, "result", "no_interpretation");
            } else {
                t.annotate(s, "candidates", set.len().to_string());
                t.annotate(
                    s,
                    "confidence",
                    format!("{:.3}", set.candidates[0].interpretation.confidence),
                );
            }
            t.close(s);
        }
        if set.is_empty() {
            seal(tb, "no_interpretation");
            return Err(InterpretError::NoInterpretation(question.to_string()));
        }

        // Rerank: confidence first (the pool is already in that
        // order), then provenance coverage — a candidate that grounds
        // more of the question's tokens beats an equally-confident one
        // that grounds fewer — then rendered SQL as the final tie.
        let sqls: Vec<String> = set.candidates.iter().map(|c| c.sql_text()).collect();
        let mut order: Vec<usize> = (0..set.candidates.len()).collect();
        order.sort_by(|&a, &b| {
            let (ca, cb) = (&set.candidates[a], &set.candidates[b]);
            cb.interpretation
                .confidence
                .partial_cmp(&ca.interpretation.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| cb.provenance.len().cmp(&ca.provenance.len()))
                .then_with(|| sqls[a].cmp(&sqls[b]))
        });

        // Validate in rerank order; the first clean candidate wins.
        let mut rejected: Vec<RejectedCandidate> = Vec::new();
        let mut winner: Option<usize> = None;
        for &i in &order {
            let c = &set.candidates[i];
            let reasons = crate::validate::validate_candidate(
                &self.db,
                &self.ctx.ontology,
                &c.interpretation.sql,
                cost_ceiling,
            );
            if reasons.is_empty() {
                winner = Some(i);
                break;
            }
            rejected.push(RejectedCandidate {
                rank: c.rank,
                sql: sqls[i].clone(),
                reasons,
            });
        }

        // Satellite guardrail: when a clarification would have been
        // asked (close top-2 confidences), annotate the losing close
        // competitors instead of dropping the ambiguity silently.
        let interps: Vec<Interpretation> = set
            .candidates
            .iter()
            .map(|c| c.interpretation.clone())
            .collect();
        if crate::clarify::needs_clarification(&interps, CLARIFY_MARGIN) {
            for i in crate::clarify::close_competitors(&interps, CLARIFY_MARGIN) {
                if winner == Some(i) {
                    continue;
                }
                let margin = interps[0].confidence - set.candidates[i].interpretation.confidence;
                let note = crate::validate::Rejection::AmbiguousWithTop { margin };
                match rejected.iter_mut().find(|r| r.rank == i) {
                    Some(r) => r.reasons.push(note),
                    None => rejected.push(RejectedCandidate {
                        rank: i,
                        sql: sqls[i].clone(),
                        reasons: vec![note],
                    }),
                }
            }
        }
        rejected.sort_by_key(|r| r.rank);

        let Some(winner) = winner else {
            // Preserve bounded-ask refusal semantics: a cost veto on
            // the best-reranked candidate refuses as CostExceeded so
            // serving keeps counting it under `cost_refused`.
            let first = order[0];
            let first_cost = rejected
                .iter()
                .find(|r| r.rank == set.candidates[first].rank)
                .and_then(|r| {
                    r.reasons.iter().find_map(|x| match x {
                        crate::validate::Rejection::CostExceeded { estimated, ceiling } => {
                            Some((*estimated, *ceiling))
                        }
                        _ => None,
                    })
                });
            if let Some((estimated, ceiling)) = first_cost {
                seal(tb, "cost_exceeded");
                return Err(InterpretError::CostExceeded { estimated, ceiling });
            }
            let reasons = rejected
                .iter()
                .map(|r| {
                    let labels: Vec<&str> = r.reasons.iter().map(|x| x.label()).collect();
                    format!("#{} {}", r.rank, labels.join("+"))
                })
                .collect::<Vec<_>>()
                .join("; ");
            seal(tb, "all_candidates_rejected");
            return Err(InterpretError::AllCandidatesRejected {
                count: set.len(),
                reasons,
            });
        };

        let chosen = &set.candidates[winner];
        let report = ValidationReport {
            family: kind,
            candidate_count: set.len(),
            chosen_rank: chosen.rank,
            rejected,
            provenance_digest: chosen.provenance_digest(),
        };

        let sql_text = sqls[winner].clone();
        if let Some(t) = tb.as_deref_mut() {
            let s = t.open("sqlgen");
            t.annotate(s, "sql", sql_text.as_str());
            t.close(s);
            if let Some(ps) = pipeline_span {
                t.annotate(ps, "candidates", report.candidate_count.to_string());
                t.annotate(ps, "rejected", report.vetoed_count().to_string());
                t.annotate(ps, "chosen_rank", report.chosen_rank.to_string());
                for r in &report.rejected {
                    let labels: Vec<&str> = r.reasons.iter().map(|x| x.label()).collect();
                    let key = format!("reject_{}", r.rank);
                    t.annotate(ps, key.as_str(), labels.join("+"));
                }
            }
        }

        let plan = explain(&self.db, &chosen.interpretation.sql);
        let exec_span = tb.as_deref_mut().map(|t| {
            let s = t.open("execute");
            t.annotate(s, "plan_shape", plan.shape.as_str());
            t.annotate(s, "est_cost", plan.est_cost.to_string());
            t.annotate(s, "est_rows", plan.est_rows.to_string());
            s
        });
        let result = execute(&self.db, &chosen.interpretation.sql);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), exec_span) {
            match &result {
                Ok(r) => t.annotate(s, "rows", r.rows.len().to_string()),
                Err(e) => t.annotate(s, "error", e.to_string()),
            }
            t.close(s);
        }
        match result {
            Ok(result) => {
                seal(tb, "answered");
                Ok(ApprovedAnswer {
                    answer: Answer {
                        sql: sql_text,
                        query: chosen.interpretation.sql.clone(),
                        result,
                        interpretation: chosen.interpretation.clone(),
                        explain: plan,
                    },
                    report,
                })
            }
            Err(e) => {
                seal(tb, "execution_error");
                Err(InterpretError::Execution(e.to_string()))
            }
        }
    }

    /// "Did you mean" suggestions for an unanswerable question: for
    /// each content word that failed to link, the closest ontology
    /// vocabulary by fuzzy similarity. The cooperative-failure path the
    /// survey's enterprise-adaption challenge asks for — silence with
    /// guidance beats a wrong answer.
    pub fn suggest(&self, question: &str) -> Vec<(String, Vec<String>)> {
        use nlidb_nlp::{is_stopword, mention_score, tokenize, TokenKind};
        let tokens = tokenize(question);
        let linked = crate::linking::link_mentions(&tokens, &self.ctx);
        let mut covered = vec![false; tokens.len()];
        for m in &linked {
            for c in covered.iter_mut().skip(m.start).take(m.len) {
                *c = true;
            }
        }
        // Vocabulary pool: concept labels + property labels.
        let mut vocab: Vec<&str> = self
            .ctx
            .ontology
            .concepts
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        vocab.extend(
            self.ctx
                .ontology
                .data_properties
                .iter()
                .map(|p| p.label.as_str()),
        );
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if covered[i]
                || t.kind != TokenKind::Word
                || is_stopword(&t.norm)
                || crate::linking::is_cue_word(&t.norm)
            {
                continue;
            }
            let mut scored: Vec<(&str, f64)> = vocab
                .iter()
                .map(|v| {
                    // Surface similarity catches typos the linker's
                    // threshold rejected; lexicon similarity catches
                    // vocabulary-gap words ("revenue" when the schema
                    // says "amount") through the synonym/hypernym
                    // taxonomy — the Lei-et-al. relaxation applied to
                    // cooperative failure.
                    let surface = mention_score(&t.norm, v);
                    let semantic = 0.8 * self.ctx.lexicon.similarity(&t.norm, v);
                    // Jaro noise sits around 0.6 for unrelated words of
                    // similar length; only strong surface matches count
                    // as typo repairs. Weaker evidence must come from
                    // the taxonomy.
                    let score = if surface >= 0.72 { surface } else { semantic };
                    (*v, score)
                })
                .filter(|(_, s)| *s >= 0.5)
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let suggestions: Vec<String> = scored
                .into_iter()
                .take(3)
                .map(|(v, _)| v.to_string())
                .collect();
            if !suggestions.is_empty() {
                out.push((t.norm.clone(), suggestions));
            }
        }
        out
    }
}

/// Compile-time proof that the serving runtime's sharing model is
/// sound: one pipeline behind an `Arc`, read concurrently by worker
/// threads. If any interpreter grows interior mutability that is not
/// thread-safe, this stops compiling rather than racing at runtime.
fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    let _ = assert_send_sync::<NliPipeline>;
    let _ = assert_send_sync::<SchemaContext>;
    let _ = assert_send_sync::<Answer>;
    let _ = assert_send_sync::<std::sync::Arc<NliPipeline>>;
};

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [(1, "Anvil", "tools", 10.0), (2, "Piano", "music", 500.0)] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn standard_builds_all_interpreters() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        for kind in InterpreterKind::all() {
            // Every family is addressable; untrained learned families
            // simply return nothing.
            let _ = nli.interpreter(kind);
        }
        assert_eq!(nli.database().name, "d");
        assert_eq!(nli.context().ontology.concepts.len(), 1);
    }

    #[test]
    fn ask_with_specific_families() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let a = nli
            .ask_with("show products in tools", InterpreterKind::Keyword)
            .unwrap();
        assert_eq!(a.sql, "SELECT * FROM products WHERE category = 'tools'");
        assert!(nli
            .ask_with("total price by category", InterpreterKind::Keyword)
            .is_err());
        assert!(nli
            .ask_with("total price by category", InterpreterKind::Pattern)
            .is_ok());
    }

    #[test]
    fn candidates_are_ranked() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let cands = nli.candidates("show products in tools", InterpreterKind::Entity);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn ask_approved_agrees_with_ask_when_top_candidate_is_clean() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let plain = nli
            .ask_with("show products in tools", InterpreterKind::Entity)
            .unwrap();
        let approved = nli
            .ask_approved("show products in tools", InterpreterKind::Entity)
            .unwrap();
        assert_eq!(approved.answer.sql, plain.sql);
        assert_eq!(approved.answer.result, plain.result);
        assert_eq!(approved.report.chosen_rank, 0);
        assert_eq!(approved.report.vetoed_count(), 0);
        assert_ne!(approved.report.provenance_digest, 0);
        assert_eq!(approved.report.family, InterpreterKind::Entity);
    }

    /// Mini clinic with a genuinely ambiguous value: "Austin" is a
    /// city of both doctors (many rows — the expensive join) and
    /// patients (few rows — the cheap one), so "show visits in Austin"
    /// has two candidate readings with different plan costs.
    fn ambiguous_db() -> Database {
        let mut db = Database::new("clinic");
        db.create_table(
            TableSchema::new("patients")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("doctors")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("visits")
                .column("id", ColumnType::Int)
                .column("patient_id", ColumnType::Int)
                .column("doctor_id", ColumnType::Int)
                .primary_key("id")
                .foreign_key("patient_id", "patients", "id")
                .foreign_key("doctor_id", "doctors", "id"),
        )
        .unwrap();
        for i in 0..2i64 {
            db.insert("patients", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
        }
        // Cost model vectorizes at 64-row granularity; the doctor side
        // must clear several batches for the two readings to price
        // differently.
        for i in 0..500i64 {
            db.insert("doctors", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
        }
        for i in 0..4i64 {
            db.insert(
                "visits",
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(i % 500)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ask_approved_rescues_cheaper_candidate_under_cost_ceiling() {
        let db = ambiguous_db();
        let nli = NliPipeline::standard(&db);
        let q = "show visits in Austin";
        let cands = nli.candidates(q, InterpreterKind::Entity);
        assert!(cands.len() >= 2, "need a multi-candidate pool: {cands:?}");
        let costs: Vec<u64> = cands
            .iter()
            .map(|c| explain(nli.database(), &c.sql).est_cost)
            .collect();
        // A ceiling that vetoes the top but admits some lower-ranked
        // candidate turns a bounded-ask refusal into a rescue.
        let admissible = costs.iter().skip(1).min().copied().unwrap();
        let sqls: Vec<String> = cands.iter().map(|c| c.sql.to_string()).collect();
        assert!(
            costs[0] > admissible,
            "fixture should make the top candidate the expensive one: {costs:?} {sqls:?}"
        );
        assert!(matches!(
            nli.ask_bounded(q, InterpreterKind::Entity, Some(admissible)),
            Err(InterpretError::CostExceeded { .. })
        ));
        let approved = nli
            .ask_approved_bounded(q, InterpreterKind::Entity, Some(admissible))
            .unwrap();
        assert!(approved.report.chosen_rank > 0, "a lower candidate won");
        assert!(approved.report.vetoed_count() >= 1);
        assert!(approved
            .report
            .rejected
            .iter()
            .any(|r| r.reasons.iter().any(|x| x.label() == "cost_exceeded")));
    }

    #[test]
    fn ask_approved_preserves_cost_refusal_when_nothing_survives() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let err = nli
            .ask_approved_bounded("show products in tools", InterpreterKind::Entity, Some(0))
            .unwrap_err();
        let InterpretError::CostExceeded { estimated, ceiling } = err else {
            panic!("expected CostExceeded, got {err:?}");
        };
        assert_eq!(ceiling, 0);
        assert!(estimated > 0);
        // Same outward behavior as the plain bounded path, so serving
        // keeps counting these under `cost_refused`.
        assert!(matches!(
            nli.ask_bounded("show products in tools", InterpreterKind::Entity, Some(0)),
            Err(InterpretError::CostExceeded { .. })
        ));
    }

    #[test]
    fn ask_approved_surfaces_clarification_on_close_losers() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let q = "show products in tools";
        let pool = nli.candidates(q, InterpreterKind::Entity);
        let close = crate::clarify::close_competitors(&pool, CLARIFY_MARGIN);
        let approved = nli.ask_approved(q, InterpreterKind::Entity).unwrap();
        if crate::clarify::needs_clarification(&pool, CLARIFY_MARGIN) {
            for i in close {
                if i == approved.report.chosen_rank {
                    continue;
                }
                assert!(
                    approved.report.rejected.iter().any(|r| r.rank == i
                        && r.reasons.iter().any(|x| x.label() == "ambiguous_with_top")),
                    "close competitor {i} lost without an ambiguity annotation: {:?}",
                    approved.report.rejected
                );
            }
        }
        // The annotation alone must never veto a candidate.
        assert!(approved
            .report
            .rejected
            .iter()
            .all(|r| r.is_vetoed() || r.reasons.iter().all(|x| x.label() == "ambiguous_with_top")));
    }

    #[test]
    fn ask_approved_traced_matches_untraced_and_annotates_candidates() {
        use nlidb_obs::{Clock, ManualClock, TraceBuilder};
        use std::sync::Arc;
        let db = db();
        let nli = NliPipeline::standard(&db);
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(0, clock.clone() as Arc<dyn Clock>);
        let traced = nli
            .ask_approved_with_trace("show products in tools", InterpreterKind::Entity, &mut tb)
            .unwrap();
        let plain = nli
            .ask_approved("show products in tools", InterpreterKind::Entity)
            .unwrap();
        assert_eq!(traced.answer.sql, plain.answer.sql);
        assert_eq!(
            traced.report.provenance_digest,
            plain.report.provenance_digest
        );
        let t = tb.finish();
        let p = t.root().unwrap();
        assert_eq!(p.attr("mode"), Some("approved"));
        assert_eq!(p.attr("outcome"), Some("answered"));
        assert_eq!(
            p.attr("candidates"),
            Some(plain.report.candidate_count.to_string().as_str())
        );
        assert_eq!(
            p.attr("chosen_rank"),
            Some(plain.report.chosen_rank.to_string().as_str())
        );
        for stage in ["tokenize", "link", "interpret", "sqlgen", "execute"] {
            assert_eq!(t.spans_named(stage).count(), 1, "missing stage {stage}");
        }
    }

    #[test]
    fn suggest_bridges_vocabulary_gaps() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        // "cost" is a ring-mate of "price" and links directly via the
        // lexicon; "expenditure" is not in any ring → no link, and no
        // close vocabulary either.
        let s = nli.suggest("total revenue of products");
        assert!(
            s.iter()
                .any(|(w, sugg)| w == "revenue" && sugg.iter().any(|x| x == "price")),
            "{s:?}"
        );
        assert!(nli.suggest("show products").is_empty());
    }

    #[test]
    fn traced_ask_matches_untraced_and_records_stages() {
        use nlidb_obs::{Clock, ManualClock, TraceBuilder};
        use std::sync::Arc;
        let db = db();
        let nli = NliPipeline::standard(&db);
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(0, clock.clone() as Arc<dyn Clock>);
        let traced = nli
            .ask_with_trace("show products in tools", InterpreterKind::Entity, &mut tb)
            .unwrap();
        let plain = nli
            .ask_with("show products in tools", InterpreterKind::Entity)
            .unwrap();
        assert_eq!(traced.sql, plain.sql, "tracing never steers the pipeline");
        assert_eq!(traced.result, plain.result);
        let t = tb.finish();
        for stage in [
            "pipeline",
            "tokenize",
            "link",
            "interpret",
            "sqlgen",
            "execute",
        ] {
            assert_eq!(t.spans_named(stage).count(), 1, "missing stage {stage}");
        }
        let p = t.root().unwrap();
        assert_eq!(p.attr("family"), Some("entity"));
        assert_eq!(p.attr("outcome"), Some("answered"));
        assert_eq!(
            t.spans_named("sqlgen").next().unwrap().attr("sql"),
            Some("SELECT * FROM products WHERE category = 'tools'")
        );

        // A refusal is traced too, with the failing stage attributed.
        let mut tb = TraceBuilder::new(1, clock as Arc<dyn Clock>);
        assert!(nli
            .ask_with_trace("colorless green ideas", InterpreterKind::Entity, &mut tb)
            .is_err());
        let t = tb.finish();
        assert_eq!(t.root().unwrap().attr("outcome"), Some("no_interpretation"));
        assert_eq!(t.spans_named("sqlgen").count(), 0, "died before SQL gen");
    }

    #[test]
    fn cost_ceiling_refuses_before_execution_and_annotates_plan() {
        use nlidb_obs::{Clock, ManualClock, TraceBuilder};
        use std::sync::Arc;
        let db = db();
        let nli = NliPipeline::standard(&db);
        let clock = Arc::new(ManualClock::new());

        // A generous ceiling admits; the execute span carries the plan.
        let mut tb = TraceBuilder::new(0, clock.clone() as Arc<dyn Clock>);
        let a = nli
            .ask_with_trace_bounded(
                "show products in tools",
                InterpreterKind::Entity,
                &mut tb,
                Some(u64::MAX),
            )
            .unwrap();
        assert_eq!(a.explain.shape, a.query.shape());
        let t = tb.finish();
        let exec = t.spans_named("execute").next().unwrap();
        assert_eq!(exec.attr("plan_shape"), Some(a.explain.shape.as_str()));
        assert_eq!(
            exec.attr("est_cost"),
            Some(a.explain.est_cost.to_string().as_str())
        );

        // Ceiling zero refuses every plan, before the execute span.
        let mut tb = TraceBuilder::new(1, clock as Arc<dyn Clock>);
        let err = nli
            .ask_with_trace_bounded(
                "show products in tools",
                InterpreterKind::Entity,
                &mut tb,
                Some(0),
            )
            .unwrap_err();
        assert!(matches!(err, InterpretError::CostExceeded { .. }));
        let t = tb.finish();
        assert_eq!(t.root().unwrap().attr("outcome"), Some("cost_exceeded"));
        assert_eq!(t.spans_named("execute").count(), 0, "never executed");
    }

    #[test]
    fn train_neural_activates_both_learned_paths() {
        use crate::neural::TrainingExample;
        let db = db();
        let mut nli = NliPipeline::standard(&db);
        assert!(nli
            .candidates("how many products", InterpreterKind::Neural)
            .is_empty());
        let train: Vec<TrainingExample> = [
            ("how many products", "SELECT COUNT(*) FROM products"),
            ("count the products", "SELECT COUNT(*) FROM products"),
            ("show all products", "SELECT * FROM products"),
            ("list products", "SELECT * FROM products"),
            (
                "average price of products",
                "SELECT AVG(price) FROM products",
            ),
        ]
        .iter()
        .map(|(q, s)| TrainingExample {
            question: q.to_string(),
            sql: nlidb_sqlir::parse_query(s).unwrap(),
        })
        .collect();
        nli.train_neural(&train, 5);
        assert!(!nli
            .candidates("how many products", InterpreterKind::Neural)
            .is_empty());
    }
}
