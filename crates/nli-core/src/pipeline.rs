//! The one-call facade: build every index and interpreter for a
//! database, ask questions, get executed answers.

use nlidb_engine::{execute, explain, Database, Explain, ResultSet};
use nlidb_nlp::Lexicon;
use nlidb_obs::TraceBuilder;
use nlidb_ontology::{generate_ontology, JoinGraph, Ontology};
use nlidb_sqlir::Query;
use nlidb_vindex::Indices;

use crate::entity::EntityInterpreter;
use crate::error::InterpretError;
use crate::hybrid::HybridInterpreter;
use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::keyword::KeywordInterpreter;
use crate::neural::{NeuralInterpreter, TrainingExample};
use crate::pattern::PatternInterpreter;

/// Everything interpreters need to know about one database: its
/// ontology, join graph, lexicon, and value/metadata indices.
#[derive(Debug)]
pub struct SchemaContext {
    /// The generated (or supplied) domain ontology.
    pub ontology: Ontology,
    /// Join graph over the ontology's relationships.
    pub graph: JoinGraph,
    /// Synonym/hypernym lexicon.
    pub lexicon: Lexicon,
    /// Value + metadata indices.
    pub indices: Indices,
}

impl SchemaContext {
    /// Build with the default business lexicon and a generated ontology.
    pub fn build(db: &Database) -> SchemaContext {
        Self::build_with_lexicon(db, Lexicon::business_default())
    }

    /// Build with a custom lexicon.
    pub fn build_with_lexicon(db: &Database, lexicon: Lexicon) -> SchemaContext {
        let ontology = generate_ontology(db);
        let graph = JoinGraph::from_ontology(&ontology);
        let indices = Indices::build(db, &ontology, &lexicon);
        SchemaContext {
            ontology,
            graph,
            lexicon,
            indices,
        }
    }
}

/// An executed answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The SQL that was run.
    pub sql: String,
    /// The query AST.
    pub query: Query,
    /// The result rows.
    pub result: ResultSet,
    /// The winning interpretation (confidence + explanation).
    pub interpretation: Interpretation,
    /// Deterministic pre-execution plan estimate (shape, cardinality,
    /// logical cost) — what cost-aware admission reasoned about.
    pub explain: Explain,
}

/// The full NLIDB stack for one database.
pub struct NliPipeline {
    db: Database,
    ctx: SchemaContext,
    keyword: KeywordInterpreter,
    pattern: PatternInterpreter,
    entity: EntityInterpreter,
    neural: NeuralInterpreter,
    hybrid: HybridInterpreter,
}

impl NliPipeline {
    /// Build the standard stack: generated ontology, business lexicon,
    /// all five interpreter families (the neural model starts
    /// untrained; see [`NliPipeline::train_neural`]).
    pub fn standard(db: &Database) -> NliPipeline {
        Self::with_context(db, SchemaContext::build(db))
    }

    /// Build from a pre-built [`SchemaContext`]. This is the hook the
    /// serving runtime uses to attach shared state — e.g. a join-path
    /// cache on the context's graph — before the pipeline freezes it.
    pub fn with_context(db: &Database, ctx: SchemaContext) -> NliPipeline {
        NliPipeline {
            db: db.clone(),
            ctx,
            keyword: KeywordInterpreter::new(),
            pattern: PatternInterpreter::new(),
            entity: EntityInterpreter::new(),
            neural: NeuralInterpreter::untrained(),
            hybrid: HybridInterpreter::new(),
        }
    }

    /// The schema context (for direct interpreter experimentation).
    pub fn context(&self) -> &SchemaContext {
        &self.ctx
    }

    /// The wrapped database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Train the neural (and the hybrid's embedded neural) model.
    pub fn train_neural(&mut self, examples: &[TrainingExample], seed: u64) {
        self.neural = NeuralInterpreter::train(examples, &self.ctx, seed);
        self.hybrid
            .set_neural(NeuralInterpreter::train(examples, &self.ctx, seed));
    }

    /// Builder-style counterpart of [`NliPipeline::train_neural`]:
    /// consume, train, return. Separates the mutable training phase
    /// from the immutable serving phase — after this the pipeline can
    /// go straight behind an `Arc` with no `&mut` access left.
    pub fn into_trained(mut self, examples: &[TrainingExample], seed: u64) -> NliPipeline {
        self.train_neural(examples, seed);
        self
    }

    /// Interpreter by family.
    pub fn interpreter(&self, kind: InterpreterKind) -> &dyn Interpreter {
        match kind {
            InterpreterKind::Keyword => &self.keyword,
            InterpreterKind::Pattern => &self.pattern,
            InterpreterKind::Entity => &self.entity,
            InterpreterKind::Neural => &self.neural,
            InterpreterKind::Hybrid => &self.hybrid,
        }
    }

    /// Ask with the default (hybrid) interpreter and execute.
    pub fn ask(&self, question: &str) -> Result<Answer, InterpretError> {
        self.ask_with(question, InterpreterKind::Hybrid)
    }

    /// Ask with a specific family and execute the best interpretation.
    pub fn ask_with(
        &self,
        question: &str,
        kind: InterpreterKind,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, None, None)
    }

    /// [`NliPipeline::ask_with`], recording per-stage spans into `tb`:
    /// `tokenize` → `link` → `interpret` → `sqlgen` → `execute`, under
    /// one `pipeline` span annotated with the family and the outcome.
    /// The traced path returns exactly what the untraced path returns —
    /// tracing observes the pipeline, it never steers it.
    pub fn ask_with_trace(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, Some(tb), None)
    }

    /// [`NliPipeline::ask_with`] under a logical-cost ceiling: when
    /// the winning plan's estimated cost exceeds `cost_ceiling`, the
    /// query is refused with [`InterpretError::CostExceeded`] *before*
    /// execution — the per-tenant admission hook the serving runtime
    /// enforces.
    pub fn ask_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, None, cost_ceiling)
    }

    /// [`NliPipeline::ask_bounded`], recording per-stage spans into
    /// `tb` like [`NliPipeline::ask_with_trace`].
    pub fn ask_with_trace_bounded(
        &self,
        question: &str,
        kind: InterpreterKind,
        tb: &mut TraceBuilder,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        self.ask_inner(question, kind, Some(tb), cost_ceiling)
    }

    /// The one interpretation-and-execution path; `ask_with` passes no
    /// tracer, `ask_with_trace` passes one. The tokenize and link
    /// stages re-run the interpreter's own front half purely to
    /// measure it (interpreters tokenize internally), so they exist
    /// only on the traced path — the untraced path does zero extra
    /// work.
    fn ask_inner(
        &self,
        question: &str,
        kind: InterpreterKind,
        mut tb: Option<&mut TraceBuilder>,
        cost_ceiling: Option<u64>,
    ) -> Result<Answer, InterpretError> {
        let pipeline_span = tb.as_deref_mut().map(|t| {
            let s = t.open("pipeline");
            t.annotate(s, "family", kind.label());
            // Stage spans the interpreters perform internally,
            // re-run here so the trace shows where linking evidence
            // came from (Affolter-style stage attribution).
            let tok = t.open("tokenize");
            let tokens = nlidb_nlp::tokenize(question);
            t.annotate(tok, "tokens", tokens.len().to_string());
            t.close(tok);
            let link = t.open("link");
            let mentions = crate::linking::link_mentions(&tokens, &self.ctx);
            t.annotate(link, "mentions", mentions.len().to_string());
            t.close(link);
            s
        });
        let seal = |tb: Option<&mut TraceBuilder>, outcome: &str| {
            if let (Some(t), Some(s)) = (tb, pipeline_span) {
                t.annotate(s, "outcome", outcome);
                t.close(s);
            }
        };

        let interp_span = tb.as_deref_mut().map(|t| t.open("interpret"));
        let interp = self.interpreter(kind).best(question, &self.ctx);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), interp_span) {
            match &interp {
                Some(i) => {
                    t.annotate(s, "confidence", format!("{:.3}", i.confidence));
                    t.annotate(s, "explanation_steps", i.explanation.len().to_string());
                }
                None => t.annotate(s, "result", "no_interpretation"),
            }
            t.close(s);
        }
        let Some(interp) = interp else {
            seal(tb, "no_interpretation");
            return Err(InterpretError::NoInterpretation(question.to_string()));
        };

        let sql_text = interp.sql.to_string();
        if let Some(t) = tb.as_deref_mut() {
            let s = t.open("sqlgen");
            t.annotate(s, "sql", sql_text.as_str());
            t.close(s);
        }

        // Pre-execution plan estimate: recorded on the execute span
        // (annotations never change span costs) and checked against
        // the admission ceiling before any work happens.
        let plan = explain(&self.db, &interp.sql);
        if let Some(ceiling) = cost_ceiling {
            if plan.est_cost > ceiling {
                seal(tb, "cost_exceeded");
                return Err(InterpretError::CostExceeded {
                    estimated: plan.est_cost,
                    ceiling,
                });
            }
        }

        let exec_span = tb.as_deref_mut().map(|t| {
            let s = t.open("execute");
            t.annotate(s, "plan_shape", plan.shape.as_str());
            t.annotate(s, "est_cost", plan.est_cost.to_string());
            t.annotate(s, "est_rows", plan.est_rows.to_string());
            s
        });
        let result = execute(&self.db, &interp.sql);
        if let (Some(t), Some(s)) = (tb.as_deref_mut(), exec_span) {
            match &result {
                Ok(r) => t.annotate(s, "rows", r.rows.len().to_string()),
                Err(e) => t.annotate(s, "error", e.to_string()),
            }
            t.close(s);
        }
        match result {
            Ok(result) => {
                seal(tb, "answered");
                Ok(Answer {
                    sql: sql_text,
                    query: interp.sql.clone(),
                    result,
                    interpretation: interp,
                    explain: plan,
                })
            }
            Err(e) => {
                seal(tb, "execution_error");
                Err(InterpretError::Execution(e.to_string()))
            }
        }
    }

    /// All candidate interpretations from one family (for clarification
    /// flows and experiments).
    pub fn candidates(&self, question: &str, kind: InterpreterKind) -> Vec<Interpretation> {
        self.interpreter(kind).interpret(question, &self.ctx)
    }

    /// "Did you mean" suggestions for an unanswerable question: for
    /// each content word that failed to link, the closest ontology
    /// vocabulary by fuzzy similarity. The cooperative-failure path the
    /// survey's enterprise-adaption challenge asks for — silence with
    /// guidance beats a wrong answer.
    pub fn suggest(&self, question: &str) -> Vec<(String, Vec<String>)> {
        use nlidb_nlp::{is_stopword, mention_score, tokenize, TokenKind};
        let tokens = tokenize(question);
        let linked = crate::linking::link_mentions(&tokens, &self.ctx);
        let mut covered = vec![false; tokens.len()];
        for m in &linked {
            for c in covered.iter_mut().skip(m.start).take(m.len) {
                *c = true;
            }
        }
        // Vocabulary pool: concept labels + property labels.
        let mut vocab: Vec<&str> = self
            .ctx
            .ontology
            .concepts
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        vocab.extend(
            self.ctx
                .ontology
                .data_properties
                .iter()
                .map(|p| p.label.as_str()),
        );
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if covered[i]
                || t.kind != TokenKind::Word
                || is_stopword(&t.norm)
                || crate::linking::is_cue_word(&t.norm)
            {
                continue;
            }
            let mut scored: Vec<(&str, f64)> = vocab
                .iter()
                .map(|v| {
                    // Surface similarity catches typos the linker's
                    // threshold rejected; lexicon similarity catches
                    // vocabulary-gap words ("revenue" when the schema
                    // says "amount") through the synonym/hypernym
                    // taxonomy — the Lei-et-al. relaxation applied to
                    // cooperative failure.
                    let surface = mention_score(&t.norm, v);
                    let semantic = 0.8 * self.ctx.lexicon.similarity(&t.norm, v);
                    // Jaro noise sits around 0.6 for unrelated words of
                    // similar length; only strong surface matches count
                    // as typo repairs. Weaker evidence must come from
                    // the taxonomy.
                    let score = if surface >= 0.72 { surface } else { semantic };
                    (*v, score)
                })
                .filter(|(_, s)| *s >= 0.5)
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let suggestions: Vec<String> = scored
                .into_iter()
                .take(3)
                .map(|(v, _)| v.to_string())
                .collect();
            if !suggestions.is_empty() {
                out.push((t.norm.clone(), suggestions));
            }
        }
        out
    }
}

/// Compile-time proof that the serving runtime's sharing model is
/// sound: one pipeline behind an `Arc`, read concurrently by worker
/// threads. If any interpreter grows interior mutability that is not
/// thread-safe, this stops compiling rather than racing at runtime.
fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    let _ = assert_send_sync::<NliPipeline>;
    let _ = assert_send_sync::<SchemaContext>;
    let _ = assert_send_sync::<Answer>;
    let _ = assert_send_sync::<std::sync::Arc<NliPipeline>>;
};

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [(1, "Anvil", "tools", 10.0), (2, "Piano", "music", 500.0)] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn standard_builds_all_interpreters() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        for kind in InterpreterKind::all() {
            // Every family is addressable; untrained learned families
            // simply return nothing.
            let _ = nli.interpreter(kind);
        }
        assert_eq!(nli.database().name, "d");
        assert_eq!(nli.context().ontology.concepts.len(), 1);
    }

    #[test]
    fn ask_with_specific_families() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let a = nli
            .ask_with("show products in tools", InterpreterKind::Keyword)
            .unwrap();
        assert_eq!(a.sql, "SELECT * FROM products WHERE category = 'tools'");
        assert!(nli
            .ask_with("total price by category", InterpreterKind::Keyword)
            .is_err());
        assert!(nli
            .ask_with("total price by category", InterpreterKind::Pattern)
            .is_ok());
    }

    #[test]
    fn candidates_are_ranked() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let cands = nli.candidates("show products in tools", InterpreterKind::Entity);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn suggest_bridges_vocabulary_gaps() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        // "cost" is a ring-mate of "price" and links directly via the
        // lexicon; "expenditure" is not in any ring → no link, and no
        // close vocabulary either.
        let s = nli.suggest("total revenue of products");
        assert!(
            s.iter()
                .any(|(w, sugg)| w == "revenue" && sugg.iter().any(|x| x == "price")),
            "{s:?}"
        );
        assert!(nli.suggest("show products").is_empty());
    }

    #[test]
    fn traced_ask_matches_untraced_and_records_stages() {
        use nlidb_obs::{Clock, ManualClock, TraceBuilder};
        use std::sync::Arc;
        let db = db();
        let nli = NliPipeline::standard(&db);
        let clock = Arc::new(ManualClock::new());
        let mut tb = TraceBuilder::new(0, clock.clone() as Arc<dyn Clock>);
        let traced = nli
            .ask_with_trace("show products in tools", InterpreterKind::Entity, &mut tb)
            .unwrap();
        let plain = nli
            .ask_with("show products in tools", InterpreterKind::Entity)
            .unwrap();
        assert_eq!(traced.sql, plain.sql, "tracing never steers the pipeline");
        assert_eq!(traced.result, plain.result);
        let t = tb.finish();
        for stage in [
            "pipeline",
            "tokenize",
            "link",
            "interpret",
            "sqlgen",
            "execute",
        ] {
            assert_eq!(t.spans_named(stage).count(), 1, "missing stage {stage}");
        }
        let p = t.root().unwrap();
        assert_eq!(p.attr("family"), Some("entity"));
        assert_eq!(p.attr("outcome"), Some("answered"));
        assert_eq!(
            t.spans_named("sqlgen").next().unwrap().attr("sql"),
            Some("SELECT * FROM products WHERE category = 'tools'")
        );

        // A refusal is traced too, with the failing stage attributed.
        let mut tb = TraceBuilder::new(1, clock as Arc<dyn Clock>);
        assert!(nli
            .ask_with_trace("colorless green ideas", InterpreterKind::Entity, &mut tb)
            .is_err());
        let t = tb.finish();
        assert_eq!(t.root().unwrap().attr("outcome"), Some("no_interpretation"));
        assert_eq!(t.spans_named("sqlgen").count(), 0, "died before SQL gen");
    }

    #[test]
    fn cost_ceiling_refuses_before_execution_and_annotates_plan() {
        use nlidb_obs::{Clock, ManualClock, TraceBuilder};
        use std::sync::Arc;
        let db = db();
        let nli = NliPipeline::standard(&db);
        let clock = Arc::new(ManualClock::new());

        // A generous ceiling admits; the execute span carries the plan.
        let mut tb = TraceBuilder::new(0, clock.clone() as Arc<dyn Clock>);
        let a = nli
            .ask_with_trace_bounded(
                "show products in tools",
                InterpreterKind::Entity,
                &mut tb,
                Some(u64::MAX),
            )
            .unwrap();
        assert_eq!(a.explain.shape, a.query.shape());
        let t = tb.finish();
        let exec = t.spans_named("execute").next().unwrap();
        assert_eq!(exec.attr("plan_shape"), Some(a.explain.shape.as_str()));
        assert_eq!(
            exec.attr("est_cost"),
            Some(a.explain.est_cost.to_string().as_str())
        );

        // Ceiling zero refuses every plan, before the execute span.
        let mut tb = TraceBuilder::new(1, clock as Arc<dyn Clock>);
        let err = nli
            .ask_with_trace_bounded(
                "show products in tools",
                InterpreterKind::Entity,
                &mut tb,
                Some(0),
            )
            .unwrap_err();
        assert!(matches!(err, InterpretError::CostExceeded { .. }));
        let t = tb.finish();
        assert_eq!(t.root().unwrap().attr("outcome"), Some("cost_exceeded"));
        assert_eq!(t.spans_named("execute").count(), 0, "never executed");
    }

    #[test]
    fn train_neural_activates_both_learned_paths() {
        use crate::neural::TrainingExample;
        let db = db();
        let mut nli = NliPipeline::standard(&db);
        assert!(nli
            .candidates("how many products", InterpreterKind::Neural)
            .is_empty());
        let train: Vec<TrainingExample> = [
            ("how many products", "SELECT COUNT(*) FROM products"),
            ("count the products", "SELECT COUNT(*) FROM products"),
            ("show all products", "SELECT * FROM products"),
            ("list products", "SELECT * FROM products"),
            (
                "average price of products",
                "SELECT AVG(price) FROM products",
            ),
        ]
        .iter()
        .map(|(q, s)| TrainingExample {
            question: q.to_string(),
            sql: nlidb_sqlir::parse_query(s).unwrap(),
        })
        .collect();
        nli.train_neural(&train, 5);
        assert!(!nli
            .candidates("how many products", InterpreterKind::Neural)
            .is_empty());
    }
}
