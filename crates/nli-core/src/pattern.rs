//! The pattern-based interpreter (SQAK class).
//!
//! §3: "simple natural language patterns like 'by', 'total/average'
//! enable such systems to detect GROUP BY and aggregation,
//! respectively" — but "they are limited to those fixed patterns" and
//! stay on a single table. Implementation: the shared entity core with
//! the single-table-patterns capability mask.

use crate::entity::{interpret_with, Capabilities};
use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::pipeline::SchemaContext;

/// SQAK-class pattern interpreter.
#[derive(Debug, Default)]
pub struct PatternInterpreter;

impl PatternInterpreter {
    /// Construct.
    pub fn new() -> PatternInterpreter {
        PatternInterpreter
    }
}

impl Interpreter for PatternInterpreter {
    fn kind(&self) -> InterpreterKind {
        InterpreterKind::Pattern
    }

    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation> {
        interpret_with(
            question,
            ctx,
            Capabilities::single_table_patterns(),
            InterpreterKind::Pattern,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_sqlir::{classify, ComplexityClass};

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("sales")
                .column("id", ColumnType::Int)
                .column("region", ColumnType::Text)
                .column("revenue", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("stores")
                .column("id", ColumnType::Int)
                .column("sale_id", ColumnType::Int)
                .primary_key("id")
                .foreign_key("sale_id", "sales", "id"),
        )
        .unwrap();
        for (id, r, v) in [(1, "west", 10.0), (2, "east", 20.0), (3, "west", 30.0)] {
            db.insert(
                "sales",
                vec![Value::Int(id), Value::from(r), Value::Float(v)],
            )
            .unwrap();
        }
        SchemaContext::build(&db)
    }

    #[test]
    fn candidate_sets_ground_aggregation_columns() {
        let ctx = ctx();
        let set = crate::candidates::gather(
            &PatternInterpreter::new(),
            "total revenue by region",
            &ctx,
            5,
        );
        assert_eq!(set.family, InterpreterKind::Pattern);
        let top = set.top().unwrap();
        assert_eq!(top.rank, 0);
        assert!(
            top.provenance
                .iter()
                .any(|g| g.target == "column:sales.revenue"),
            "{:?}",
            top.provenance
        );
        assert!(
            top.provenance
                .iter()
                .any(|g| g.target == "column:sales.region"),
            "{:?}",
            top.provenance
        );
    }

    #[test]
    fn total_by_pattern() {
        let ctx = ctx();
        let i = PatternInterpreter::new()
            .best("total revenue by region", &ctx)
            .unwrap();
        assert_eq!(
            i.sql.to_string(),
            "SELECT region, SUM(revenue) FROM sales GROUP BY region"
        );
        assert_eq!(classify(&i.sql), ComplexityClass::SingleTableAggregation);
    }

    #[test]
    fn average_pattern() {
        let ctx = ctx();
        let i = PatternInterpreter::new()
            .best("average revenue of sales", &ctx)
            .unwrap();
        assert_eq!(i.sql.to_string(), "SELECT AVG(revenue) FROM sales");
    }

    #[test]
    fn count_per_pattern() {
        let ctx = ctx();
        let i = PatternInterpreter::new()
            .best("count of sales per region", &ctx)
            .unwrap();
        assert_eq!(
            i.sql.to_string(),
            "SELECT region, COUNT(*) FROM sales GROUP BY region"
        );
    }

    #[test]
    fn top_n_pattern() {
        let ctx = ctx();
        let i = PatternInterpreter::new()
            .best("top 2 sales by revenue", &ctx)
            .unwrap();
        assert!(i.sql.to_string().ends_with("ORDER BY revenue DESC LIMIT 2"));
    }

    #[test]
    fn selection_still_works() {
        let ctx = ctx();
        let i = PatternInterpreter::new()
            .best("sales in west", &ctx)
            .unwrap();
        assert_eq!(
            i.sql.to_string(),
            "SELECT * FROM sales WHERE region = 'west'"
        );
    }

    #[test]
    fn joins_out_of_scope() {
        let ctx = ctx();
        for i in PatternInterpreter::new().interpret("revenue of sales with stores", &ctx) {
            assert!(i.sql.joins.is_empty());
            assert!(!i.sql.has_subquery());
        }
    }

    #[test]
    fn nested_out_of_scope() {
        let ctx = ctx();
        assert!(PatternInterpreter::new()
            .interpret("sales without stores", &ctx)
            .is_empty());
    }

    #[test]
    fn never_exceeds_aggregation_rung() {
        let ctx = ctx();
        let qs = [
            "total revenue by region",
            "sales in east",
            "top 2 sales by revenue",
            "count of sales",
        ];
        for q in qs {
            for i in PatternInterpreter::new().interpret(q, &ctx) {
                assert!(
                    classify(&i.sql) <= ComplexityClass::SingleTableAggregation,
                    "{q} produced {}",
                    i.sql
                );
            }
        }
    }
}
