//! Query-signal extraction shared by the pattern and entity
//! interpreters: aggregation cues, grouping prepositions, top-N
//! phrases, comparisons, negation, and against-average phrases.
//!
//! These are the "natural language patterns" the survey credits the
//! SQAK generation of systems with: "simple natural language patterns
//! like 'by', 'total/average' enable such systems to detect GROUP BY
//! and aggregation".

use nlidb_nlp::literal::{comparison_cue, parse_date, parse_number, ComparisonCue, DateValue};
use nlidb_nlp::{Token, TokenKind};
use nlidb_sqlir::ast::{AggFunc, BinOp};

/// Convert a [`ComparisonCue`] to a SQL operator (BETWEEN handled
/// separately by callers).
pub fn cue_to_binop(cue: ComparisonCue) -> Option<BinOp> {
    Some(match cue {
        ComparisonCue::Gt => BinOp::Gt,
        ComparisonCue::Ge => BinOp::GtEq,
        ComparisonCue::Lt => BinOp::Lt,
        ComparisonCue::Le => BinOp::LtEq,
        ComparisonCue::Eq => BinOp::Eq,
        ComparisonCue::Ne => BinOp::NotEq,
        ComparisonCue::Between => return None,
    })
}

/// An aggregation cue found in the utterance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggCue {
    /// The aggregate function implied.
    pub func: AggFunc,
    /// Token index of the cue word.
    pub at: usize,
    /// Number of tokens the cue spans.
    pub len: usize,
}

/// Find the first aggregation cue: "total"/"sum", "average"/"mean",
/// "count"/"how many"/"number of", "maximum"/"minimum".
pub fn find_agg_cue(tokens: &[Token]) -> Option<AggCue> {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Word {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.norm.as_str()).unwrap_or("");
        let cue = match t.norm.as_str() {
            "total" | "sum" | "overall" => Some((AggFunc::Sum, 1)),
            "average" | "mean" | "avg" => Some((AggFunc::Avg, 1)),
            "count" => Some((AggFunc::Count, 1)),
            "how" if next == "many" => Some((AggFunc::Count, 2)),
            "number" if next == "of" => Some((AggFunc::Count, 2)),
            "maximum" | "max" => Some((AggFunc::Max, 1)),
            "minimum" | "min" => Some((AggFunc::Min, 1)),
            _ => None,
        };
        if let Some((func, len)) = cue {
            return Some(AggCue { func, at: i, len });
        }
    }
    None
}

/// Find a grouping preposition ("by", "per", "for each", "in each");
/// returns the index of the first token *after* the cue (where the
/// grouping property mention starts).
pub fn find_group_cue(tokens: &[Token]) -> Option<usize> {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Word {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.norm.as_str()).unwrap_or("");
        match t.norm.as_str() {
            // "by"/"per" only group when not part of "order by"/"sort by"
            // (those are ordering cues) and not followed by a number.
            "by" | "per" => {
                let prev = i
                    .checked_sub(1)
                    .map(|j| tokens[j].norm.as_str())
                    .unwrap_or("");
                if prev != "order"
                    && prev != "sort"
                    && prev != "rank"
                    && tokens.get(i + 1).map(|t| t.kind) != Some(TokenKind::Number)
                {
                    return Some(i + 1);
                }
            }
            "each" | "every" => {
                // "for each X", "in each X", or bare "each X".
                return Some(i + 1);
            }
            _ => {
                let _ = next;
            }
        }
    }
    None
}

/// Find an ordering cue ("order by" / "sort by" / "rank by"); returns
/// (index after cue, ascending?). "descending"/"desc" anywhere after
/// flips direction.
pub fn find_order_cue(tokens: &[Token]) -> Option<(usize, bool)> {
    for (i, t) in tokens.iter().enumerate() {
        if matches!(
            t.norm.as_str(),
            "order" | "sort" | "rank" | "sorted" | "ranked" | "ordered"
        ) && tokens.get(i + 1).map(|t| t.norm.as_str()) == Some("by")
        {
            let asc = !tokens
                .iter()
                .skip(i + 2)
                .any(|t| matches!(t.norm.as_str(), "desc" | "descending" | "decreasing"));
            return Some((i + 2, asc));
        }
    }
    None
}

/// A "top N" / "N largest" / bare-superlative phrase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopCue {
    /// LIMIT value (1 for bare superlatives like "the largest").
    pub n: u64,
    /// Sort descending when true ("top", "largest", "most") — false
    /// for "bottom", "smallest", "least", "cheapest".
    pub desc: bool,
    /// Token index where the phrase starts.
    pub at: usize,
    /// Tokens consumed.
    pub len: usize,
}

const DESC_SUPERLATIVES: &[&str] = &[
    "top", "largest", "biggest", "highest", "most", "best", "greatest", "maximum", "latest",
    "newest", "longest",
];
const ASC_SUPERLATIVES: &[&str] = &[
    "bottom", "smallest", "lowest", "least", "worst", "cheapest", "minimum", "earliest", "oldest",
    "fewest", "shortest",
];

/// Find a top-N cue: "top 5 X", "5 largest X", "the cheapest X".
pub fn find_top_cue(tokens: &[Token]) -> Option<TopCue> {
    for (i, t) in tokens.iter().enumerate() {
        // "top 5", "bottom 3"
        if (t.is_word("top") || t.is_word("bottom")) && i + 1 < tokens.len() {
            if let Some(n) = tokens[i + 1].as_number() {
                return Some(TopCue {
                    n: n.max(1.0) as u64,
                    desc: t.is_word("top"),
                    at: i,
                    len: 2,
                });
            }
            // bare "top X"
            return Some(TopCue {
                n: 1,
                desc: t.is_word("top"),
                at: i,
                len: 1,
            });
        }
        // "5 largest"
        if t.kind == TokenKind::Number {
            if let Some(next) = tokens.get(i + 1) {
                if DESC_SUPERLATIVES.contains(&next.norm.as_str()) {
                    return Some(TopCue {
                        n: t.as_number().unwrap_or(1.0).max(1.0) as u64,
                        desc: true,
                        at: i,
                        len: 2,
                    });
                }
                if ASC_SUPERLATIVES.contains(&next.norm.as_str()) {
                    return Some(TopCue {
                        n: t.as_number().unwrap_or(1.0).max(1.0) as u64,
                        desc: false,
                        at: i,
                        len: 2,
                    });
                }
            }
        }
        // bare superlative: "the largest order"
        if DESC_SUPERLATIVES.contains(&t.norm.as_str()) && t.norm != "top" {
            return Some(TopCue {
                n: 1,
                desc: true,
                at: i,
                len: 1,
            });
        }
        if ASC_SUPERLATIVES.contains(&t.norm.as_str()) {
            return Some(TopCue {
                n: 1,
                desc: false,
                at: i,
                len: 1,
            });
        }
    }
    None
}

/// One numeric comparison found in the utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct CompSignal {
    /// SQL operator.
    pub op: BinOp,
    /// Right-hand constant.
    pub value: f64,
    /// Optional BETWEEN upper bound (op is then ignored).
    pub high: Option<f64>,
    /// Token index where the cue starts.
    pub cue_at: usize,
    /// Token index of the value token.
    pub value_at: usize,
}

/// Find numeric comparisons: "more than 5", "at least 2 million",
/// "between 10 and 20", "over 100", "age > 30".
pub fn find_comparisons(tokens: &[Token]) -> Vec<CompSignal> {
    let norms: Vec<&str> = tokens.iter().map(|t| t.norm.as_str()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Symbolic operators.
        if tokens[i].kind == TokenKind::Punct {
            let op = match norms[i] {
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::GtEq),
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::LtEq),
                "=" | "==" => Some(BinOp::Eq),
                "<>" | "!=" => Some(BinOp::NotEq),
                _ => None,
            };
            if let Some(op) = op {
                if let Some((v, consumed)) = parse_number(&norms[i + 1..]) {
                    out.push(CompSignal {
                        op,
                        value: v,
                        high: None,
                        cue_at: i,
                        value_at: i + 1,
                    });
                    i += 1 + consumed;
                    continue;
                }
            }
        }
        if let Some((cue, cue_len)) = comparison_cue(&norms[i..]) {
            let vstart = i + cue_len;
            if cue == ComparisonCue::Between {
                // between A and B
                if let Some((lo, lo_len)) = parse_number(&norms[vstart..]) {
                    let and_at = vstart + lo_len;
                    if norms.get(and_at) == Some(&"and") {
                        if let Some((hi, hi_len)) = parse_number(&norms[and_at + 1..]) {
                            out.push(CompSignal {
                                op: BinOp::GtEq,
                                value: lo,
                                high: Some(hi),
                                cue_at: i,
                                value_at: vstart,
                            });
                            i = and_at + 1 + hi_len;
                            continue;
                        }
                    }
                }
            } else if let Some(op) = cue_to_binop(cue) {
                if let Some((v, consumed)) = parse_number(&norms[vstart..]) {
                    out.push(CompSignal {
                        op,
                        value: v,
                        high: None,
                        cue_at: i,
                        value_at: vstart,
                    });
                    i = vstart + consumed;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Find a negation cue attached to a related-concept mention:
/// "without", "with no", "that have no", "who never placed".
/// Returns the index of the first token after the cue.
pub fn find_negation_cue(tokens: &[Token]) -> Option<usize> {
    for (i, t) in tokens.iter().enumerate() {
        match t.norm.as_str() {
            "without" => return Some(i + 1),
            "no" | "never" => {
                let prev = i
                    .checked_sub(1)
                    .map(|j| tokens[j].norm.as_str())
                    .unwrap_or("");
                if matches!(prev, "with" | "have" | "has" | "had" | "who" | "that") {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Detect an against-average comparison: "above average", "below the
/// average", "more than the average", "higher than average".
pub fn find_vs_average(tokens: &[Token]) -> Option<BinOp> {
    let norms: Vec<&str> = tokens.iter().map(|t| t.norm.as_str()).collect();
    for i in 0..norms.len() {
        let is_avg_at = |j: usize| {
            norms.get(j) == Some(&"average")
                || norms.get(j) == Some(&"mean")
                || (norms.get(j) == Some(&"the")
                    && (norms.get(j + 1) == Some(&"average") || norms.get(j + 1) == Some(&"mean")))
        };
        match norms[i] {
            "above" | "over" if is_avg_at(i + 1) => return Some(BinOp::Gt),
            "below" | "under" if is_avg_at(i + 1) => return Some(BinOp::Lt),
            "more" | "greater" | "higher" | "larger"
                if norms.get(i + 1) == Some(&"than") && is_avg_at(i + 2) =>
            {
                return Some(BinOp::Gt)
            }
            "less" | "fewer" | "lower" | "smaller"
                if norms.get(i + 1) == Some(&"than") && is_avg_at(i + 2) =>
            {
                return Some(BinOp::Lt)
            }
            _ => {}
        }
    }
    None
}

/// Find a date mention ("2019", "march 2019", "2019-03-05") not
/// already consumed as a plain number comparison. Returns the value
/// and the token index where it starts.
pub fn find_date(tokens: &[Token]) -> Option<(DateValue, usize)> {
    let norms: Vec<&str> = tokens.iter().map(|t| t.norm.as_str()).collect();
    // ISO dates lex as number/punct runs (`2019 - 03 - 05`): rebuild.
    for i in 0..norms.len() {
        if tokens[i].kind == TokenKind::Number && norms[i].len() == 4 {
            let full = if i + 4 < norms.len() && norms[i + 1] == "-" && norms[i + 3] == "-" {
                Some(format!("{}-{}-{}", norms[i], norms[i + 2], norms[i + 4]))
            } else if i + 2 < norms.len() && norms[i + 1] == "-" {
                Some(format!("{}-{}", norms[i], norms[i + 2]))
            } else {
                None
            };
            if let Some(full) = full {
                if let Some((d, _)) = parse_date(&[full.as_str()]) {
                    return Some((d, i));
                }
            }
        }
    }
    for i in 0..norms.len() {
        // Require a temporal preposition before bare years to avoid
        // eating comparison constants ("more than 2019 units").
        if let Some((d, _len)) = parse_date(&norms[i..]) {
            let prev = i.checked_sub(1).map(|j| norms[j]).unwrap_or("");
            let is_contextual = matches!(
                prev,
                "in" | "during" | "for" | "since" | "from" | "of" | "on" | "before" | "after"
            );
            if is_contextual || norms[i].contains('-') {
                return Some((d, i));
            }
        }
    }
    None
}

/// Is the utterance phrased as a distinct-values request ("different
/// cities", "unique products", "distinct regions")?
pub fn find_distinct_cue(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| matches!(t.norm.as_str(), "distinct" | "unique" | "different"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_nlp::tokenize;

    #[test]
    fn agg_cues() {
        let t = tokenize("total revenue by region");
        let c = find_agg_cue(&t).unwrap();
        assert_eq!(c.func, AggFunc::Sum);
        assert_eq!(c.at, 0);

        let t = tokenize("how many customers are there");
        let c = find_agg_cue(&t).unwrap();
        assert_eq!(c.func, AggFunc::Count);
        assert_eq!(c.len, 2);

        let t = tokenize("number of orders");
        assert_eq!(find_agg_cue(&t).unwrap().func, AggFunc::Count);

        let t = tokenize("show all customers");
        assert!(find_agg_cue(&t).is_none());
    }

    #[test]
    fn group_cue_positions() {
        let t = tokenize("total revenue by region");
        assert_eq!(find_group_cue(&t), Some(3));
        let t = tokenize("count of orders per city");
        assert_eq!(find_group_cue(&t), Some(4));
        let t = tokenize("revenue for each category");
        assert_eq!(find_group_cue(&t), Some(3));
        // "order by" is ordering, not grouping.
        let t = tokenize("customers order by name");
        assert_eq!(find_group_cue(&t), None);
    }

    #[test]
    fn order_cue() {
        let t = tokenize("customers sorted by age descending");
        let (idx, asc) = find_order_cue(&t).unwrap();
        assert_eq!(idx, 3);
        assert!(!asc);
        let t = tokenize("products order by price");
        let (idx, asc) = find_order_cue(&t).unwrap();
        assert_eq!(idx, 3);
        assert!(asc);
    }

    #[test]
    fn top_cues() {
        let t = tokenize("top 5 products by sales");
        let c = find_top_cue(&t).unwrap();
        assert_eq!((c.n, c.desc), (5, true));

        let t = tokenize("3 cheapest products");
        let c = find_top_cue(&t).unwrap();
        assert_eq!((c.n, c.desc), (3, false));

        let t = tokenize("the largest order");
        let c = find_top_cue(&t).unwrap();
        assert_eq!((c.n, c.desc), (1, true));

        let t = tokenize("list products");
        assert!(find_top_cue(&t).is_none());
    }

    #[test]
    fn comparisons() {
        let t = tokenize("customers with more than 5 orders");
        let c = find_comparisons(&t);
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].op, c[0].value), (BinOp::Gt, 5.0));

        let t = tokenize("price between 10 and 20");
        let c = find_comparisons(&t);
        assert_eq!(c[0].high, Some(20.0));
        assert_eq!(c[0].value, 10.0);

        let t = tokenize("revenue of at least 2 million");
        let c = find_comparisons(&t);
        assert_eq!((c[0].op, c[0].value), (BinOp::GtEq, 2e6));

        let t = tokenize("age > 30 and salary <= 100");
        let c = find_comparisons(&t);
        assert_eq!(c.len(), 2);
        assert_eq!(c[1].op, BinOp::LtEq);
    }

    #[test]
    fn negation_cues() {
        let t = tokenize("customers without orders");
        assert_eq!(find_negation_cue(&t), Some(2));
        let t = tokenize("customers with no orders");
        assert_eq!(find_negation_cue(&t), Some(3));
        let t = tokenize("customers that have no orders");
        assert_eq!(find_negation_cue(&t), Some(4));
        let t = tokenize("customers with orders");
        assert_eq!(find_negation_cue(&t), None);
    }

    #[test]
    fn vs_average() {
        assert_eq!(
            find_vs_average(&tokenize("products above average price")),
            Some(BinOp::Gt)
        );
        assert_eq!(
            find_vs_average(&tokenize("orders below the average amount")),
            Some(BinOp::Lt)
        );
        assert_eq!(
            find_vs_average(&tokenize("salary higher than the average")),
            Some(BinOp::Gt)
        );
        assert_eq!(find_vs_average(&tokenize("average price by city")), None);
    }

    #[test]
    fn date_detection() {
        let t = tokenize("orders in 2019");
        let (d, at) = find_date(&t).unwrap();
        assert_eq!(d.to_iso(), "2019");
        assert_eq!(at, 2);
        // Bare number without temporal context is not a date.
        let t = tokenize("more than 2019 units");
        assert!(find_date(&t).is_none());
        let t = tokenize("orders on 2019-03-05");
        assert_eq!(find_date(&t).unwrap().0.to_iso(), "2019-03-05");
    }

    #[test]
    fn distinct_cue() {
        assert!(find_distinct_cue(&tokenize("unique cities of customers")));
        assert!(!find_distinct_cue(&tokenize("cities of customers")));
    }
}
