//! The keyword-lookup interpreter (SODA / Précis / QUICK class).
//!
//! §3: early systems "only consider each individual word for a
//! possible match in meta data or data instances. Such systems can
//! only handle simple filter queries but cannot detect other clauses
//! like GROUP BY and ORDER BY." The implementation is the shared
//! entity core with the selection-only capability mask: index lookups
//! and equality filters, nothing else.

use crate::entity::{interpret_with, Capabilities};
use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::pipeline::SchemaContext;

/// SODA-class keyword interpreter.
#[derive(Debug, Default)]
pub struct KeywordInterpreter;

impl KeywordInterpreter {
    /// Construct.
    pub fn new() -> KeywordInterpreter {
        KeywordInterpreter
    }
}

impl Interpreter for KeywordInterpreter {
    fn kind(&self) -> InterpreterKind {
        InterpreterKind::Keyword
    }

    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation> {
        interpret_with(
            question,
            ctx,
            Capabilities::selection_only(),
            InterpreterKind::Keyword,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_sqlir::{classify, ComplexityClass};

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [
            (1, "Anvil", "tools", 10.0),
            (2, "Rope", "tools", 5.0),
            (3, "Piano", "music", 500.0),
        ] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        SchemaContext::build(&db)
    }

    #[test]
    fn candidate_sets_carry_provenance_within_the_capability_ceiling() {
        let ctx = ctx();
        let set =
            crate::candidates::gather(&KeywordInterpreter::new(), "products in tools", &ctx, 5);
        assert_eq!(set.family, InterpreterKind::Keyword);
        assert!(!set.is_empty());
        let top = set.top().unwrap();
        assert!(
            top.provenance
                .iter()
                .any(|g| g.target == "concept:products"),
            "{:?}",
            top.provenance
        );
        assert!(
            top.provenance
                .iter()
                .any(|g| g.target == "value:products.category=tools"),
            "{:?}",
            top.provenance
        );
        // The selection-only ceiling holds for every candidate, not
        // just the best one.
        for c in &set.candidates {
            assert!(!c.interpretation.sql.has_aggregation());
            assert!(!c.interpretation.sql.has_subquery());
        }
    }

    #[test]
    fn simple_filter_works() {
        let ctx = ctx();
        let i = KeywordInterpreter::new()
            .best("products in tools", &ctx)
            .unwrap();
        assert_eq!(
            i.sql.to_string(),
            "SELECT * FROM products WHERE category = 'tools'"
        );
        assert_eq!(classify(&i.sql), ComplexityClass::SingleTableSelection);
    }

    #[test]
    fn aggregation_out_of_scope() {
        let ctx = ctx();
        assert!(
            KeywordInterpreter::new()
                .interpret("total price by category", &ctx)
                .is_empty(),
            "keyword systems cannot detect GROUP BY"
        );
    }

    #[test]
    fn ordering_out_of_scope() {
        let ctx = ctx();
        assert!(KeywordInterpreter::new()
            .interpret("top 3 products by price", &ctx)
            .is_empty());
    }

    #[test]
    fn never_emits_beyond_selection() {
        let ctx = ctx();
        let questions = [
            "products in music",
            "piano",
            "products named Anvil",
            "show products",
        ];
        for q in questions {
            for i in KeywordInterpreter::new().interpret(q, &ctx) {
                assert_eq!(
                    classify(&i.sql),
                    ComplexityClass::SingleTableSelection,
                    "keyword produced {:?} for {q}",
                    i.sql.to_string()
                );
            }
        }
    }
}
