//! The ontology-driven entity-based interpreter (ATHENA / NaLIR
//! class), plus the capability-scoped core that the keyword and
//! pattern interpreters reuse.
//!
//! The survey's §4.1 conclusion is the behaviour this module encodes:
//! entity-based approaches "can handle complex input queries and
//! generate complex structured queries", at the price of being
//! "highly sensitive to variations and paraphrasing".
//!
//! Interpretation proceeds in the classic stages: mention linking
//! (via the shared [`crate::linking`] module) → signal extraction
//! (aggregates, grouping, ordering, comparisons, negation, dates) →
//! OQL assembly → join inference → SQL lowering. Each family's
//! *ceiling* is expressed as a [`Capabilities`] mask rather than a
//! separate code path, so the capability-matrix experiment measures
//! exactly the constraint the survey describes.

use nlidb_nlp::tokenize;
use nlidb_ontology::PropertyRole;
use nlidb_sqlir::ast::{AggFunc, BinOp, Literal};

use crate::interpretation::{rank, Interpretation, Interpreter, InterpreterKind};
use crate::linking::{link_mentions, LinkKind, LinkedMention};
use crate::oql::{Oql, OqlExpr, OqlOrder, OqlPredicate, PropRef};
use crate::pipeline::SchemaContext;
use crate::signals;

/// Feature mask defining how far up the §3 complexity ladder a family
/// is allowed to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Aggregates + GROUP BY (rung 2).
    pub aggregation: bool,
    /// ORDER BY / LIMIT (rung 2).
    pub ordering: bool,
    /// Multi-table joins (rung 3).
    pub joins: bool,
    /// Nested sub-queries (rung 4).
    pub nested: bool,
}

impl Capabilities {
    /// Everything on (ATHENA-class).
    pub fn full() -> Capabilities {
        Capabilities {
            aggregation: true,
            ordering: true,
            joins: true,
            nested: true,
        }
    }

    /// Keyword-lookup systems: plain selection only.
    pub fn selection_only() -> Capabilities {
        Capabilities {
            aggregation: false,
            ordering: false,
            joins: false,
            nested: false,
        }
    }

    /// Pattern systems: single-table aggregation/ordering.
    pub fn single_table_patterns() -> Capabilities {
        Capabilities {
            aggregation: true,
            ordering: true,
            joins: false,
            nested: false,
        }
    }

    /// The WikiSQL sketch regime: single-table aggregation without
    /// ORDER BY — the learned family's structural reach.
    pub fn wikisql_sketch() -> Capabilities {
        Capabilities {
            aggregation: true,
            ordering: false,
            joins: false,
            nested: false,
        }
    }

    /// The paper-faithful ceiling of each family (the masks E1 and the
    /// reproduction-claims tests assert; the graceful-degradation
    /// ladder relies on them to bound what a fallback may answer).
    pub fn of(kind: InterpreterKind) -> Capabilities {
        match kind {
            InterpreterKind::Keyword => Capabilities::selection_only(),
            InterpreterKind::Pattern => Capabilities::single_table_patterns(),
            InterpreterKind::Neural => Capabilities::wikisql_sketch(),
            InterpreterKind::Entity | InterpreterKind::Hybrid => Capabilities::full(),
        }
    }

    /// Whether a query of this §3 complexity rung is inside the mask.
    pub fn permits(&self, class: nlidb_sqlir::ComplexityClass) -> bool {
        use nlidb_sqlir::ComplexityClass::*;
        match class {
            SingleTableSelection => true,
            SingleTableAggregation => self.aggregation || self.ordering,
            MultiTableJoin => self.joins,
            NestedSubquery => self.nested,
        }
    }
}

/// Convert a measured float into the tightest SQL literal.
fn num_literal(v: f64) -> Literal {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        Literal::Int(v as i64)
    } else {
        Literal::Float(v)
    }
}

fn role_of(ctx: &SchemaContext, p: &PropRef) -> Option<PropertyRole> {
    ctx.ontology
        .property(&p.concept, &p.property)
        .map(|dp| dp.role)
}

fn prop_of(m: &LinkedMention) -> Option<PropRef> {
    match &m.kind {
        LinkKind::Property { concept, property } => {
            Some(PropRef::new(concept.clone(), property.clone()))
        }
        _ => None,
    }
}

/// The result of OQL construction, before SQL lowering — exposed so
/// the dialogue layer can manipulate queries across turns.
#[derive(Debug, Clone)]
pub struct OqlBuild {
    /// The assembled ontology-level query.
    pub oql: Oql,
    /// Product of mention link scores (raw evidence strength).
    pub score: f64,
    /// Fraction of content words the reading accounted for (linked
    /// mentions + recognized signal words). ATHENA-style coverage:
    /// unexplained vocabulary is evidence the reading missed intent.
    pub coverage: f64,
    /// Derivation trace.
    pub explanation: Vec<String>,
}

/// Interpret a question under a capability mask. Returns ranked
/// interpretations; empty when the question is outside the mask's
/// reach or nothing links.
pub fn interpret_with(
    question: &str,
    ctx: &SchemaContext,
    caps: Capabilities,
    kind: InterpreterKind,
) -> Vec<Interpretation> {
    let Some(build) = build_oql(question, ctx, caps) else {
        return Vec::new();
    };
    lower_builds(question, build, ctx, caps, kind)
}

/// Build the OQL reading of a question without lowering to SQL.
/// Returns `None` when nothing links or the mask excludes the shape.
pub fn build_oql(question: &str, ctx: &SchemaContext, caps: Capabilities) -> Option<OqlBuild> {
    let tokens = tokenize(question);
    let mut mentions = link_mentions(&tokens, ctx);
    if mentions.is_empty() {
        return None;
    }
    let mut explanation: Vec<String> = mentions
        .iter()
        .map(|m| format!("linked '{}' → {:?} (score {:.2})", m.text, m.kind, m.score))
        .collect();

    // Focus: first concept mention, else the concept of the first
    // mention of any kind.
    let focus = mentions
        .iter()
        .find(|m| m.is_concept())
        .map(|m| m.concept().to_string())
        .unwrap_or_else(|| mentions[0].concept().to_string());
    explanation.push(format!("focus concept: {focus}"));

    // Nested-query shapes must be detected against the *full* mention
    // set, before weaker families narrow their view: a negated related
    // concept makes the question inherently nested, so families
    // without nesting are out of scope entirely.
    let negation_over_relation = signals::find_negation_cue(&tokens)
        .map(|idx| {
            mentions
                .iter()
                .any(|m| m.start >= idx && m.is_concept() && m.concept() != focus)
        })
        .unwrap_or(false);
    if negation_over_relation && !caps.nested {
        return None;
    }

    // Families without join support only see the focus concept's
    // mentions — the survey's single-table ceiling.
    if !caps.joins {
        mentions.retain(|m| m.concept() == focus);
        if mentions.is_empty() {
            return None;
        }
    }

    prefer_focus_values(&mut mentions, &focus, ctx);
    prefer_context_properties(&mut mentions, &focus, ctx);

    let mut oql = Oql::focused(focus.clone());
    let mut used = vec![false; mentions.len()];
    // Mark concept mentions of the focus as used (they establish focus).
    for (i, m) in mentions.iter().enumerate() {
        if m.is_concept() && m.concept() == focus {
            used[i] = true;
        }
    }
    let mut score_product: f64 = mentions.iter().map(|m| m.score).product();

    // --- Negation → anti-join (nested rung). ---
    if let Some(neg_idx) = signals::find_negation_cue(&tokens) {
        if let Some((i, other)) = mentions
            .iter()
            .enumerate()
            .find(|(_, m)| m.start >= neg_idx && m.is_concept() && m.concept() != focus)
            .map(|(i, m)| (i, m.concept().to_string()))
        {
            if !caps.nested {
                return None;
            }
            oql.predicates.push(OqlPredicate::HasNoRelated {
                other: other.clone(),
            });
            used[i] = true;
            explanation.push(format!("negation: {focus} without related {other}"));
        }
    }

    // --- Comparisons. ---
    let comparisons = signals::find_comparisons(&tokens);
    for comp in &comparisons {
        // Nearest property mention left of the cue, else right of the
        // value; prefer measures.
        let target = nearest_property(&mentions, &used, comp.cue_at, ctx);
        match target {
            Some((i, prop)) => {
                used[i] = true;
                if let Some(high) = comp.high {
                    oql.predicates.push(OqlPredicate::Between {
                        prop: prop.clone(),
                        low: num_literal(comp.value),
                        high: num_literal(high),
                    });
                } else {
                    oql.predicates.push(OqlPredicate::Compare {
                        prop: prop.clone(),
                        op: comp.op,
                        value: num_literal(comp.value),
                    });
                }
                explanation.push(format!(
                    "comparison: {}.{} {:?} {}",
                    prop.concept, prop.property, comp.op, comp.value
                ));
            }
            None => {
                // Maybe a related-concept count: "more than 5 orders".
                if let Some((i, other)) = mentions
                    .iter()
                    .enumerate()
                    .find(|(i, m)| {
                        !used[*i]
                            && m.start >= comp.value_at
                            && m.is_concept()
                            && m.concept() != focus
                    })
                    .map(|(i, m)| (i, m.concept().to_string()))
                {
                    if !(caps.joins && caps.aggregation) {
                        return None;
                    }
                    used[i] = true;
                    oql.extra_joins.push(other.clone());
                    // Group on the focus descriptor (or pk) and filter
                    // the related count.
                    let group_prop = descriptor_prop(ctx, &focus);
                    oql.select.push(OqlExpr::Prop(group_prop.clone()));
                    oql.group_by.push(group_prop);
                    oql.having
                        .push((AggFunc::Count, None, comp.op, num_literal(comp.value)));
                    explanation.push(format!(
                        "related-count filter: COUNT({other}) {:?} {}",
                        comp.op, comp.value
                    ));
                }
            }
        }
    }

    // --- Against-average (nested rung). ---
    if let Some(op) = signals::find_vs_average(&tokens) {
        if !caps.nested {
            return None;
        }
        if let Some((i, prop)) = first_measure_property(&mentions, ctx)
            .or_else(|| sole_measure_of(ctx, &focus).map(|p| (usize::MAX, p)))
        {
            if i != usize::MAX {
                used[i] = true;
            }
            oql.predicates.push(OqlPredicate::CompareToGlobalAgg {
                prop: prop.clone(),
                op,
                agg: AggFunc::Avg,
                of: prop.clone(),
            });
            explanation.push(format!(
                "against-average: {}.{} {op:?} AVG",
                prop.concept, prop.property
            ));
        }
    }

    // Tokens explained by fired signals (beyond linked mentions and
    // the static cue vocabulary) — e.g. the verb introducing a date
    // filter ("orders *dated* in 2019").
    let mut signal_covered: Vec<usize> = Vec::new();

    // --- Date filter (with direction: "in", "before", "after"). ---
    if let Some((date, date_at)) = signals::find_date(&tokens) {
        let temporal = mentions
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
            .find(|(_, p)| role_of(ctx, p) == Some(PropertyRole::Temporal))
            .or_else(|| {
                ctx.ontology
                    .properties_of(&focus)
                    .into_iter()
                    .find(|p| p.role == PropertyRole::Temporal)
                    .map(|p| (usize::MAX, PropRef::new(focus.clone(), p.label.clone())))
            });
        if let Some((i, prop)) = temporal {
            if i != usize::MAX {
                used[i] = true;
            }
            let (lo, hi) = date.day_range();
            let direction = date_at
                .checked_sub(1)
                .map(|j| tokens[j].norm.as_str())
                .unwrap_or("");
            let pred = match direction {
                "before" | "until" => OqlPredicate::Compare {
                    prop: prop.clone(),
                    op: BinOp::Lt,
                    value: Literal::Str(lo),
                },
                "after" => OqlPredicate::Compare {
                    prop: prop.clone(),
                    op: BinOp::Gt,
                    value: Literal::Str(hi),
                },
                "since" | "from" => OqlPredicate::Compare {
                    prop: prop.clone(),
                    op: BinOp::GtEq,
                    value: Literal::Str(lo),
                },
                _ => OqlPredicate::Between {
                    prop: prop.clone(),
                    low: Literal::Str(lo),
                    high: Literal::Str(hi),
                },
            };
            oql.predicates.push(pred);
            // The date filter explains the date tokens and up to two
            // preceding connective words ("dated in", "placed before").
            signal_covered.push(date_at);
            for back in 1..=2usize {
                if let Some(j) = date_at.checked_sub(back) {
                    signal_covered.push(j);
                }
            }
            explanation.push(format!(
                "date filter ({}) on {}.{}",
                if direction.is_empty() {
                    "in"
                } else {
                    direction
                },
                prop.concept,
                prop.property
            ));
        }
    }

    // --- Value mentions → equality / IN-list filters. ---
    // Multiple values on the same property ("in Austin or Boston")
    // disjoin into one IN list; conjunction of distinct equalities on
    // one column is never the intended reading.
    let mut value_groups: Vec<(PropRef, Vec<String>)> = Vec::new();
    for i in 0..mentions.len() {
        if used[i] {
            continue;
        }
        if let LinkKind::Value {
            concept,
            property,
            value,
        } = mentions[i].kind.clone()
        {
            used[i] = true;
            // A property mention naming the same column just before the
            // value ("customers with segment consumer") is part of the
            // filter phrase, not a projection.
            for (j, pm) in mentions.iter().enumerate() {
                if !used[j]
                    && pm.start + pm.len + 1 >= mentions[i].start
                    && pm.start < mentions[i].start
                {
                    if let LinkKind::Property {
                        concept: pc,
                        property: pp,
                    } = &pm.kind
                    {
                        if *pc == concept && *pp == property {
                            used[j] = true;
                        }
                    }
                }
            }
            let prop = PropRef::new(concept.clone(), property.clone());
            match value_groups.iter_mut().find(|(p, _)| *p == prop) {
                Some((_, vs)) => vs.push(value.clone()),
                None => value_groups.push((prop, vec![value.clone()])),
            }
            explanation.push(format!("value filter: {concept}.{property} = '{value}'"));
        }
    }
    for (prop, values) in value_groups {
        if values.len() == 1 {
            oql.predicates.push(OqlPredicate::Compare {
                prop,
                op: BinOp::Eq,
                value: Literal::Str(values.into_iter().next().expect("one value")),
            });
        } else {
            oql.predicates.push(OqlPredicate::ValueIn {
                prop,
                values: values.into_iter().map(Literal::Str).collect(),
            });
        }
    }

    // --- "has related" semi-join: "customers with orders". ---
    if caps.nested {
        for (i, m) in mentions.iter().enumerate() {
            if used[i] || !m.is_concept() || m.concept() == focus {
                continue;
            }
            let prev = m
                .start
                .checked_sub(1)
                .map(|j| tokens[j].norm.as_str())
                .unwrap_or("");
            let prev2 = m
                .start
                .checked_sub(2)
                .map(|j| tokens[j].norm.as_str())
                .unwrap_or("");
            if matches!(prev, "with" | "have" | "has" | "having")
                || matches!(prev2, "with" | "have" | "has" | "having")
            {
                used[i] = true;
                oql.predicates.push(OqlPredicate::HasRelated {
                    other: m.concept().to_string(),
                });
                explanation.push(format!("semi-join: {focus} having related {}", m.concept()));
            }
        }
    }

    // --- Aggregation. ---
    // "above/below average" is a nested comparison, not an AVG
    // projection — the against-average handler consumed it.
    let vs_avg_consumed_avg = signals::find_vs_average(&tokens).is_some();
    let agg_cue =
        signals::find_agg_cue(&tokens).filter(|c| !(vs_avg_consumed_avg && c.func == AggFunc::Avg));
    let mut group_idx = signals::find_group_cue(&tokens);
    // "top 5 products by price": without an aggregate, the "by X"
    // phrase names the sort key, not a grouping.
    if signals::find_top_cue(&tokens).is_some() && agg_cue.is_none() {
        group_idx = None;
    }
    if (agg_cue.is_some() || group_idx.is_some()) && !caps.aggregation {
        return None;
    }
    let mut group_prop: Option<PropRef> = None;
    if let Some(gidx) = group_idx {
        // First unused property mention at/after the grouping cue.
        if let Some((i, prop)) = mentions
            .iter()
            .enumerate()
            .filter(|(i, m)| !used[*i] && m.start >= gidx)
            .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
            .next()
        {
            used[i] = true;
            group_prop = Some(prop.clone());
            explanation.push(format!("group by {}.{}", prop.concept, prop.property));
        }
    }
    let mut agg_expr: Option<OqlExpr> = None;
    if let Some(cue) = agg_cue {
        let target = mentions
            .iter()
            .enumerate()
            .filter(|(i, m)| !used[*i] && m.start >= cue.at)
            .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
            .find(|(_, p)| {
                role_of(ctx, p)
                    .map(|r| r == PropertyRole::Measure)
                    .unwrap_or(false)
                    || cue.func == AggFunc::Min
                    || cue.func == AggFunc::Max
            });
        match (target, cue.func) {
            (Some((i, prop)), func) => {
                used[i] = true;
                agg_expr = Some(OqlExpr::Agg(func, Some(prop.clone())));
                explanation.push(format!(
                    "aggregate: {}({}.{})",
                    func.name(),
                    prop.concept,
                    prop.property
                ));
            }
            (None, AggFunc::Count) => {
                agg_expr = Some(OqlExpr::Agg(AggFunc::Count, None));
                explanation.push("aggregate: COUNT(*)".to_string());
            }
            (None, func) => {
                // Aggregate with no linked measure: fall back to the
                // focus's sole measure if unambiguous — otherwise the
                // aggregation intent is unfulfillable and declining
                // beats emitting a degenerate agg-less reading.
                match sole_measure_of(ctx, &focus) {
                    Some(p) => agg_expr = Some(OqlExpr::Agg(func, Some(p))),
                    None => return None,
                }
            }
        }
    }

    // --- Ordering / top-N. ---
    let top_cue = signals::find_top_cue(&tokens);
    let order_cue = signals::find_order_cue(&tokens);
    if (top_cue.is_some() || order_cue.is_some()) && !caps.ordering {
        return None;
    }
    if let Some(top) = top_cue {
        let order_expr = if let (Some(agg), true) = (&agg_expr, group_prop.is_some()) {
            // "region with the highest total sales" orders by the agg.
            agg.clone()
        } else {
            // Order by the nearest measure property (linked or sole).
            match mentions
                .iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
                .find(|(_, p)| role_of(ctx, p) == Some(PropertyRole::Measure))
            {
                Some((i, p)) => {
                    used[i] = true;
                    OqlExpr::Prop(p)
                }
                None => match sole_measure_of(ctx, &focus) {
                    Some(p) => OqlExpr::Prop(p),
                    None => return None,
                },
            }
        };
        if let OqlExpr::Prop(p) = &order_expr {
            explanation.push(format!(
                "top-{} by {}.{} ({})",
                top.n,
                p.concept,
                p.property,
                if top.desc { "desc" } else { "asc" }
            ));
        }
        oql.order_by.push(OqlOrder {
            expr: order_expr,
            asc: !top.desc,
        });
        oql.limit = Some(top.n);
        score_product *= 0.98;
    } else if let Some((oidx, asc)) = order_cue {
        if let Some((i, prop)) = mentions
            .iter()
            .enumerate()
            .filter(|(i, m)| !used[*i] && m.start >= oidx)
            .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
            .next()
        {
            used[i] = true;
            oql.order_by.push(OqlOrder {
                expr: OqlExpr::Prop(prop),
                asc,
            });
        }
    }

    // --- Projection assembly. ---
    if let Some(g) = &group_prop {
        oql.select.push(OqlExpr::Prop(g.clone()));
        oql.group_by.push(g.clone());
    }
    if let Some(a) = &agg_expr {
        oql.select.push(a.clone());
    }
    if agg_expr.is_none() {
        // Remaining unused property mentions become projections.
        for (i, m) in mentions.iter().enumerate() {
            if used[i] {
                continue;
            }
            if let Some(p) = prop_of(m) {
                used[i] = true;
                oql.select.push(OqlExpr::Prop(p));
            }
        }
    }
    if signals::find_distinct_cue(&tokens) && !oql.select.is_empty() {
        oql.distinct = true;
    }

    // Interpretation coverage: content words neither linked nor
    // recognized as signal vocabulary are unexplained.
    let mut covered = vec![false; tokens.len()];
    for m in &mentions {
        for c in covered.iter_mut().skip(m.start).take(m.len) {
            *c = true;
        }
    }
    for &i in &signal_covered {
        if i < covered.len() {
            covered[i] = true;
        }
    }
    let mut content_total = 0usize;
    let mut content_covered = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != nlidb_nlp::TokenKind::Word || nlidb_nlp::is_stopword(&t.norm) {
            continue;
        }
        content_total += 1;
        if covered[i] || crate::linking::is_cue_word(&t.norm) {
            content_covered += 1;
        }
    }
    let coverage = if content_total == 0 {
        1.0
    } else {
        content_covered as f64 / content_total as f64
    };
    Some(OqlBuild {
        oql,
        score: score_product,
        coverage,
        explanation,
    })
}

/// Lower an [`OqlBuild`] to ranked interpretations, generating
/// alternative readings for ambiguous value mentions.
fn lower_builds(
    question: &str,
    build: OqlBuild,
    ctx: &SchemaContext,
    caps: Capabilities,
    kind: InterpreterKind,
) -> Vec<Interpretation> {
    let OqlBuild {
        oql,
        score: score_product,
        coverage,
        explanation,
    } = build;
    let coverage_factor = 0.35 + 0.65 * coverage;
    let tokens = tokenize(question);
    let mut mentions = link_mentions(&tokens, ctx);
    prefer_focus_values(&mut mentions, &oql.focus, ctx);
    prefer_context_properties(&mut mentions, &oql.focus, ctx);

    // --- Lower to SQL. ---
    let mut out = Vec::new();
    match oql.to_sql(&ctx.ontology, &ctx.graph) {
        Ok(sql) => {
            let confidence = ((0.55 + 0.45 * score_product) * coverage_factor).min(1.0);
            let mut interp = Interpretation::new(sql, confidence, kind);
            interp.explanation = explanation.clone();
            out.push(interp);
        }
        Err(_) => return Vec::new(),
    }

    // --- Alternative readings for ambiguous value mentions. ---
    for m in &mentions {
        if let LinkKind::Value {
            concept,
            property,
            value,
        } = &m.kind
        {
            for alt in ctx.indices.values.lookup(&m.text).into_iter().take(3) {
                let alt_concept = match ctx.ontology.concept_for_table(&alt.table) {
                    Some(c) => c.label.clone(),
                    None => continue,
                };
                let alt_prop = match ctx
                    .ontology
                    .properties_of(&alt_concept)
                    .into_iter()
                    .find(|p| p.column == alt.column)
                {
                    Some(p) => p.label.clone(),
                    None => continue,
                };
                if alt_concept == *concept && alt_prop == *property {
                    continue;
                }
                if !caps.joins && alt_concept != oql.focus {
                    continue;
                }
                let mut alt_oql = oql.clone();
                let mut replaced = false;
                for pred in &mut alt_oql.predicates {
                    if let OqlPredicate::Compare {
                        prop,
                        op: BinOp::Eq,
                        value: v,
                    } = pred
                    {
                        if prop.concept == *concept
                            && prop.property == *property
                            && *v == Literal::Str(value.clone())
                        {
                            *prop = PropRef::new(alt_concept.clone(), alt_prop.clone());
                            *v = Literal::Str(alt.value.clone());
                            replaced = true;
                            break;
                        }
                    }
                }
                if replaced {
                    if let Ok(sql) = alt_oql.to_sql(&ctx.ontology, &ctx.graph) {
                        let confidence = ((0.55 + 0.45 * score_product * alt.score * 0.8)
                            * coverage_factor)
                            .min(1.0);
                        out.push(Interpretation::new(sql, confidence, kind).explain(format!(
                            "alternative: '{}' read as {alt_concept}.{alt_prop}",
                            m.text
                        )));
                    }
                }
            }
        }
    }
    rank(out)
}

/// Property-mention disambiguation: a bare property word that exists
/// on several concepts ("city") binds to (1) the concept mentioned
/// immediately before it ("patient city"), else (2) the focus concept
/// — NaLIR's context-sensitive node mapping.
fn prefer_context_properties(mentions: &mut [LinkedMention], focus: &str, ctx: &SchemaContext) {
    // Collect (position, concept) of concept mentions first.
    let concept_positions: Vec<(usize, usize, String)> = mentions
        .iter()
        .filter(|m| m.is_concept())
        .map(|m| (m.start, m.len, m.concept().to_string()))
        .collect();
    for m in mentions.iter_mut() {
        let LinkKind::Property { concept, property } = &m.kind else {
            continue;
        };
        // Rule 1: adjacent preceding concept mention owns the property.
        let adjacent = concept_positions
            .iter()
            .find(|(start, len, _)| start + len <= m.start && m.start - (start + len) <= 1)
            .map(|(_, _, c)| c.clone());
        let candidates: Vec<String> = adjacent
            .into_iter()
            .chain(std::iter::once(focus.to_string()))
            .collect();
        for target in candidates {
            if target == *concept {
                break; // already bound to the preferred concept
            }
            if ctx.ontology.property(&target, property).is_some() {
                m.kind = LinkKind::Property {
                    concept: target,
                    property: property.clone(),
                };
                break;
            }
        }
    }
}

/// Value-mention disambiguation: when a value string exists in
/// several columns, prefer the reading on the focus concept (SODA's
/// ranking aggregates lookup scores; ties break toward the queried
/// entity). Only equal-or-better-scoring hits may override.
fn prefer_focus_values(mentions: &mut [LinkedMention], focus: &str, ctx: &SchemaContext) {
    for m in mentions.iter_mut() {
        if let LinkKind::Value { concept, .. } = &m.kind {
            if concept != focus {
                let better = ctx
                    .indices
                    .values
                    .lookup(&m.text)
                    .into_iter()
                    .filter(|h| h.score >= m.score - 1e-9)
                    .find(|h| {
                        ctx.ontology
                            .concept_for_table(&h.table)
                            .map(|c| c.label == focus)
                            .unwrap_or(false)
                    });
                if let Some(hit) = better {
                    if let Some(prop) = ctx
                        .ontology
                        .properties_of(focus)
                        .into_iter()
                        .find(|p| p.column == hit.column)
                    {
                        m.kind = LinkKind::Value {
                            concept: focus.to_string(),
                            property: prop.label.clone(),
                            value: hit.value,
                        };
                        m.score = hit.score;
                    }
                }
            }
        }
    }
}

/// Nearest unused property mention strictly left of `pos` (preferring
/// measures), else the first unused property right of `pos`.
fn nearest_property(
    mentions: &[LinkedMention],
    used: &[bool],
    pos: usize,
    ctx: &SchemaContext,
) -> Option<(usize, PropRef)> {
    let candidates: Vec<(usize, PropRef)> = mentions
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
        .collect();
    let is_measure = |p: &PropRef| role_of(ctx, p) == Some(PropertyRole::Measure);
    // Left of the cue, nearest first, measures preferred.
    let left = candidates
        .iter()
        .filter(|(i, _)| mentions[*i].start < pos)
        .max_by_key(|(i, p)| (is_measure(p), mentions[*i].start));
    if let Some((i, p)) = left {
        if is_measure(p) || mentions[*i].start + mentions[*i].len >= pos {
            return Some((*i, p.clone()));
        }
    }
    // Right of the cue: only numeric-compatible properties.
    candidates
        .into_iter()
        .filter(|(i, _)| mentions[*i].start > pos)
        .find(|(_, p)| is_measure(p))
}

fn first_measure_property(
    mentions: &[LinkedMention],
    ctx: &SchemaContext,
) -> Option<(usize, PropRef)> {
    mentions
        .iter()
        .enumerate()
        .filter_map(|(i, m)| prop_of(m).map(|p| (i, p)))
        .find(|(_, p)| role_of(ctx, p) == Some(PropertyRole::Measure))
}

/// The descriptor property of a concept, falling back to its primary
/// key, falling back to its first property.
fn descriptor_prop(ctx: &SchemaContext, concept: &str) -> PropRef {
    if let Some(d) = ctx.ontology.descriptor_of(concept) {
        return PropRef::new(concept, d.label.clone());
    }
    let props = ctx.ontology.properties_of(concept);
    if let Some(pk) = ctx
        .ontology
        .concept(concept)
        .and_then(|c| c.primary_key.clone())
    {
        if let Some(p) = props.iter().find(|p| p.column == pk) {
            return PropRef::new(concept, p.label.clone());
        }
    }
    PropRef::new(
        concept,
        props.first().map(|p| p.label.clone()).unwrap_or_default(),
    )
}

/// The focus concept's only measure property (None when 0 or ≥2).
fn sole_measure_of(ctx: &SchemaContext, concept: &str) -> Option<PropRef> {
    let measures = ctx.ontology.measures_of(concept);
    if measures.len() == 1 {
        Some(PropRef::new(concept, measures[0].label.clone()))
    } else {
        None
    }
}

/// The ATHENA/NaLIR-class interpreter: full capability mask.
#[derive(Debug, Default)]
pub struct EntityInterpreter;

impl EntityInterpreter {
    /// Construct.
    pub fn new() -> EntityInterpreter {
        EntityInterpreter
    }
}

impl Interpreter for EntityInterpreter {
    fn kind(&self) -> InterpreterKind {
        InterpreterKind::Entity
    }

    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation> {
        interpret_with(question, ctx, Capabilities::full(), InterpreterKind::Entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};

    fn setup() -> (Database, SchemaContext) {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .column("signup_date", ColumnType::Date)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c, d) in [
            (1, "Ada", "Austin", "2019-01-05"),
            (2, "Bob", "Boston", "2020-06-10"),
        ] {
            db.insert(
                "customers",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::from(d),
                ],
            )
            .unwrap();
        }
        db.insert(
            "orders",
            vec![Value::Int(1), Value::Int(1), Value::Float(99.0)],
        )
        .unwrap();
        let ctx = SchemaContext::build(&db);
        (db, ctx)
    }

    #[test]
    fn ambiguous_values_yield_candidates_with_distinct_provenance() {
        // "Austin" is a city of both patients and doctors: the family
        // must emit both readings, each grounding the same question
        // span to a different column.
        let mut db = Database::new("clinic");
        db.create_table(
            TableSchema::new("patients")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("doctors")
                .column("id", ColumnType::Int)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("visits")
                .column("id", ColumnType::Int)
                .column("patient_id", ColumnType::Int)
                .column("doctor_id", ColumnType::Int)
                .primary_key("id")
                .foreign_key("patient_id", "patients", "id")
                .foreign_key("doctor_id", "doctors", "id"),
        )
        .unwrap();
        for i in 0..2i64 {
            db.insert("patients", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
            db.insert("doctors", vec![Value::Int(i), Value::from("Austin")])
                .unwrap();
            db.insert("visits", vec![Value::Int(i), Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let ctx = SchemaContext::build(&db);
        let set =
            crate::candidates::gather(&EntityInterpreter::new(), "show visits in Austin", &ctx, 5);
        assert!(
            set.len() >= 2,
            "both readings expected: {:?}",
            set.candidates
        );
        let value_targets: Vec<Vec<&str>> = set
            .candidates
            .iter()
            .map(|c| {
                c.provenance
                    .iter()
                    .filter(|g| g.target.starts_with("value:"))
                    .map(|g| g.target.as_str())
                    .collect()
            })
            .collect();
        assert_ne!(
            value_targets[0], value_targets[1],
            "the two readings must ground the value differently"
        );
    }

    fn best_sql(q: &str, ctx: &SchemaContext) -> String {
        EntityInterpreter::new()
            .best(q, ctx)
            .unwrap_or_else(|| panic!("no interpretation for: {q}"))
            .sql
            .to_string()
    }

    #[test]
    fn selection_with_value_filter() {
        let (_db, ctx) = setup();
        assert_eq!(
            best_sql("show customers in Austin", &ctx),
            "SELECT * FROM customers WHERE city = 'Austin'"
        );
    }

    #[test]
    fn projection_of_named_property() {
        let (_db, ctx) = setup();
        assert_eq!(
            best_sql("names of customers in Austin", &ctx),
            "SELECT name FROM customers WHERE city = 'Austin'"
        );
    }

    #[test]
    fn aggregation_with_group() {
        let (_db, ctx) = setup();
        let sql = best_sql("total order amount by customer city", &ctx);
        assert!(sql.contains("SUM(orders.amount)"), "{sql}");
        assert!(sql.contains("GROUP BY customers.city"), "{sql}");
        assert!(sql.contains("JOIN"), "{sql}");
    }

    #[test]
    fn count_question() {
        let (_db, ctx) = setup();
        assert_eq!(
            best_sql("how many customers are there", &ctx),
            "SELECT COUNT(*) FROM customers"
        );
    }

    #[test]
    fn comparison_filter() {
        let (_db, ctx) = setup();
        assert_eq!(
            best_sql("orders with amount greater than 50", &ctx),
            "SELECT * FROM orders WHERE amount > 50"
        );
    }

    #[test]
    fn negation_produces_not_in() {
        let (_db, ctx) = setup();
        let sql = best_sql("customers without orders", &ctx);
        assert!(
            sql.contains("NOT IN (SELECT orders.customer_id FROM orders)"),
            "{sql}"
        );
    }

    #[test]
    fn above_average_produces_scalar_subquery() {
        let (_db, ctx) = setup();
        let sql = best_sql("orders with amount above average", &ctx);
        assert!(sql.contains("(SELECT AVG(amount) FROM orders)"), "{sql}");
    }

    #[test]
    fn related_count_produces_having() {
        let (_db, ctx) = setup();
        let sql = best_sql("customers with more than 5 orders", &ctx);
        assert!(sql.contains("HAVING COUNT(*) > 5"), "{sql}");
        assert!(sql.contains("JOIN orders"), "{sql}");
        assert!(sql.contains("GROUP BY customers.name"), "{sql}");
    }

    #[test]
    fn top_n() {
        let (_db, ctx) = setup();
        let sql = best_sql("top 3 orders by amount", &ctx);
        assert!(sql.ends_with("ORDER BY amount DESC LIMIT 3"), "{sql}");
    }

    #[test]
    fn date_filter() {
        let (_db, ctx) = setup();
        let sql = best_sql("customers who signed up in 2019", &ctx);
        assert!(
            sql.contains("signup_date BETWEEN '2019-01-01' AND '2019-12-31'"),
            "{sql}"
        );
    }

    #[test]
    fn no_mentions_no_interpretations() {
        let (_db, ctx) = setup();
        assert!(EntityInterpreter::new()
            .interpret("quantum flux capacitors", &ctx)
            .is_empty());
    }

    #[test]
    fn capability_mask_blocks_joins() {
        let (_db, ctx) = setup();
        // Single-table mask asked a join question: it should produce a
        // single-table (wrong or empty) reading, never a join.
        let out = interpret_with(
            "total order amount by customer city",
            &ctx,
            Capabilities::single_table_patterns(),
            InterpreterKind::Pattern,
        );
        for i in &out {
            assert!(i.sql.joins.is_empty(), "mask must prevent joins: {}", i.sql);
        }
    }

    #[test]
    fn capability_mask_blocks_nested() {
        let (_db, ctx) = setup();
        let out = interpret_with(
            "customers without orders",
            &ctx,
            Capabilities::single_table_patterns(),
            InterpreterKind::Pattern,
        );
        assert!(out.is_empty(), "nested question must be out of scope");
    }

    #[test]
    fn date_direction_before_after() {
        let (_db, ctx) = setup();
        let sql = best_sql("customers who signed up before 2020", &ctx);
        assert!(sql.contains("signup_date < '2020-01-01'"), "{sql}");
        let sql = best_sql("customers who signed up after 2019", &ctx);
        assert!(sql.contains("signup_date > '2019-12-31'"), "{sql}");
        let sql = best_sql("customers who signed up since 2019", &ctx);
        assert!(sql.contains("signup_date >= '2019-01-01'"), "{sql}");
    }

    #[test]
    fn value_disjunction_becomes_in_list() {
        let (_db, ctx) = setup();
        let sql = best_sql("show customers in Austin or Boston", &ctx);
        assert!(
            sql.contains("city IN ('Austin', 'Boston')")
                || sql.contains("city IN ('Boston', 'Austin')"),
            "{sql}"
        );
    }

    #[test]
    fn explanations_present() {
        let (_db, ctx) = setup();
        let i = EntityInterpreter::new()
            .best("customers in Austin", &ctx)
            .unwrap();
        assert!(i.explanation.iter().any(|e| e.contains("focus concept")));
        assert!(i.confidence > 0.5);
    }
}
