//! Deterministic pre-execution validation — the "Plan → Approve" half
//! of the candidate workflow.
//!
//! [`validate_candidate`] inspects a candidate's SQL-IR *without
//! executing it* and returns every reason it should be rejected:
//! schema validity against the ontology (unknown tables/columns),
//! shape checks on the IR (the AST is SELECT-only, so structural
//! read-only-ness is given; degenerate shapes are not), grounding of
//! string-equality literals in the actual column data (a point lookup,
//! not a query run), and the logical-cost ceiling from
//! [`nlidb_engine::explain`]. All checks are catalog/data lookups with
//! deterministic order — no RNG, no wall-clock — so the same candidate
//! always collects the identical rejection list.
//!
//! [`cost_gate`] is the single enforcement point for
//! `TenantPolicy::cost_ceiling`: the pipeline's plain ask path and the
//! approved path both call it, making the ceiling a validation-layer
//! input rather than a post-hoc refusal.

use nlidb_engine::{explain, Database, Explain, Value};
use nlidb_ontology::Ontology;
use nlidb_sqlir::ast::TableSource;
use nlidb_sqlir::Query;

use crate::error::InterpretError;

/// One reason a candidate was rejected (or, for
/// [`Rejection::AmbiguousWithTop`], annotated) before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// A referenced table is not a concept of the ontology.
    UnknownTable {
        /// The unresolved table name.
        table: String,
    },
    /// A referenced column belongs to no referenced concept.
    UnknownColumn {
        /// The unresolved column name.
        column: String,
    },
    /// The IR has a degenerate shape that cannot answer anything.
    MalformedShape {
        /// Which shape check failed.
        reason: &'static str,
    },
    /// A `column = 'literal'` filter whose literal appears nowhere in
    /// that column's data — the query would return an empty (almost
    /// surely wrong) answer, so it is rejected without running.
    UngroundedValue {
        /// The filtered column, rendered `table.column`.
        column: String,
        /// The literal that failed to ground.
        value: String,
    },
    /// Estimated plan cost exceeds the tenant's ceiling.
    CostExceeded {
        /// Estimated logical-tick cost.
        estimated: u64,
        /// The ceiling it exceeded.
        ceiling: u64,
    },
    /// Annotation, not a veto: this losing candidate was within the
    /// clarification margin of the winner — a clarification would have
    /// been asked (see `crate::clarify`).
    AmbiguousWithTop {
        /// Confidence gap to the top candidate.
        margin: f64,
    },
}

impl Rejection {
    /// Short machine-readable label, stable for journals and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::UnknownTable { .. } => "unknown_table",
            Rejection::UnknownColumn { .. } => "unknown_column",
            Rejection::MalformedShape { .. } => "malformed_shape",
            Rejection::UngroundedValue { .. } => "ungrounded_value",
            Rejection::CostExceeded { .. } => "cost_exceeded",
            Rejection::AmbiguousWithTop { .. } => "ambiguous_with_top",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::UnknownTable { table } => write!(f, "unknown table {table}"),
            Rejection::UnknownColumn { column } => write!(f, "unknown column {column}"),
            Rejection::MalformedShape { reason } => write!(f, "malformed shape: {reason}"),
            Rejection::UngroundedValue { column, value } => {
                write!(f, "value {value:?} not grounded in {column}")
            }
            Rejection::CostExceeded { estimated, ceiling } => {
                write!(f, "plan cost {estimated} exceeds ceiling {ceiling}")
            }
            Rejection::AmbiguousWithTop { margin } => {
                write!(f, "within clarification margin of top ({margin:.3})")
            }
        }
    }
}

/// The single `cost_ceiling` enforcement point: refuse when the plan's
/// estimate exceeds the ceiling. Both `ask` and `ask_approved` route
/// through here, so serving's `cost_refused` semantics are identical
/// on either path.
pub fn cost_gate(plan: &Explain, ceiling: Option<u64>) -> Result<(), InterpretError> {
    if let Some(ceiling) = ceiling {
        if plan.est_cost > ceiling {
            return Err(InterpretError::CostExceeded {
                estimated: plan.est_cost,
                ceiling,
            });
        }
    }
    Ok(())
}

/// Validate one candidate query before execution. Returns every
/// rejection in deterministic order (shape, tables, columns, values,
/// cost); an empty vector means the candidate is approved for
/// execution. Checks recurse through sub-queries.
pub fn validate_candidate(
    db: &Database,
    ontology: &Ontology,
    query: &Query,
    cost_ceiling: Option<u64>,
) -> Vec<Rejection> {
    let mut out = Vec::new();

    // Shape checks: degenerate IR no interpreter should ship.
    if query.select.is_empty() {
        out.push(Rejection::MalformedShape {
            reason: "empty select list",
        });
    }
    if query.having.is_some() && !query.has_aggregation() {
        out.push(Rejection::MalformedShape {
            reason: "having without aggregation",
        });
    }
    if query.limit == Some(0) {
        out.push(Rejection::MalformedShape { reason: "limit 0" });
    }

    // Schema validity against the ontology.
    let tables = query.referenced_tables();
    let mut seen_tables: Vec<&str> = Vec::new();
    for t in &tables {
        if seen_tables.contains(&t.as_str()) {
            continue;
        }
        seen_tables.push(t);
        if ontology.concept_for_table(t).is_none() {
            out.push(Rejection::UnknownTable { table: t.clone() });
        }
    }

    let bindings = table_bindings(query);
    let mut seen_cols: Vec<String> = Vec::new();
    for cr in query.referenced_columns() {
        let rendered = match &cr.table {
            Some(t) => format!("{t}.{}", cr.column),
            None => cr.column.clone(),
        };
        if seen_cols.contains(&rendered) {
            continue;
        }
        seen_cols.push(rendered.clone());
        if !column_is_known(ontology, &bindings, &cr.table, &cr.column) {
            out.push(Rejection::UnknownColumn { column: rendered });
        }
    }

    // Value grounding: every string-equality literal must exist in the
    // column it filters (point lookup against the stored data).
    let mut seen_vals: Vec<(String, String)> = Vec::new();
    for (cr, value) in query.string_equalities() {
        let Some((table, col)) = resolve_column(db, &bindings, &cr.table, &cr.column) else {
            continue; // unresolvable: already reported as unknown
        };
        let key = (format!("{table}.{col}"), value.clone());
        if seen_vals.contains(&key) {
            continue;
        }
        if !value_exists(db, &table, &col, &value) {
            out.push(Rejection::UngroundedValue {
                column: key.0.clone(),
                value,
            });
        }
        seen_vals.push(key);
    }

    // Cost ceiling, via the same gate the plain ask path enforces.
    if let Err(InterpretError::CostExceeded { estimated, ceiling }) =
        cost_gate(&explain(db, query), cost_ceiling)
    {
        out.push(Rejection::CostExceeded { estimated, ceiling });
    }

    out
}

/// `(binding name, base table)` pairs for every named base-table
/// source, recursively. Derived-table aliases are returned with an
/// empty table name so qualified references through them are treated
/// as opaque (validated inside the sub-query instead).
fn table_bindings(query: &Query) -> Vec<(String, String)> {
    fn source(src: &TableSource, out: &mut Vec<(String, String)>) {
        match src {
            TableSource::Table { name, alias } => {
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                out.push((binding, name.clone()));
            }
            TableSource::Subquery { alias, .. } => out.push((alias.clone(), String::new())),
        }
    }
    fn walk(q: &Query, out: &mut Vec<(String, String)>) {
        if let Some(src) = &q.from {
            source(src, out);
        }
        for j in &q.joins {
            source(&j.source, out);
        }
        for sq in q.direct_subqueries() {
            walk(sq, out);
        }
    }
    let mut out = Vec::new();
    walk(query, &mut out);
    out
}

/// Is `column` (optionally qualified by a binding name) a column of
/// some referenced concept — a data property, a primary key, or a
/// join-edge column?
fn column_is_known(
    ontology: &Ontology,
    bindings: &[(String, String)],
    qualifier: &Option<String>,
    column: &str,
) -> bool {
    let candidate_tables: Vec<&str> = match qualifier {
        Some(q) => {
            let Some((_, table)) = bindings.iter().find(|(b, _)| b == q) else {
                return false; // qualifier names no source at all
            };
            if table.is_empty() {
                return true; // derived table: opaque, checked inside
            }
            vec![table.as_str()]
        }
        None => bindings
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(_, t)| t.as_str())
            .collect(),
    };
    candidate_tables.iter().any(|t| {
        let Some(concept) = ontology.concept_for_table(t) else {
            return false; // table already reported unknown
        };
        concept.primary_key.as_deref() == Some(column)
            || ontology
                .properties_of(&concept.label)
                .iter()
                .any(|p| p.column == column)
            || ontology
                .relationships_of(&concept.label)
                .iter()
                .any(|r| r.from_column == column || r.to_column == column)
    })
}

/// Resolve a (possibly qualified) column reference to a concrete
/// `(table, column)` pair in the database catalog, or `None` when it
/// cannot be pinned to exactly one base table that has the column.
fn resolve_column(
    db: &Database,
    bindings: &[(String, String)],
    qualifier: &Option<String>,
    column: &str,
) -> Option<(String, String)> {
    let has_col = |table: &str| {
        db.table(table)
            .is_ok_and(|t| t.schema.column_index(column).is_some())
    };
    match qualifier {
        Some(q) => bindings
            .iter()
            .find(|(b, _)| b == q)
            .filter(|(_, t)| !t.is_empty() && has_col(t))
            .map(|(_, t)| (t.clone(), column.to_string())),
        None => {
            let mut hits = bindings
                .iter()
                .filter(|(_, t)| !t.is_empty() && has_col(t))
                .map(|(_, t)| t.as_str());
            let first = hits.next()?;
            if hits.any(|t| t != first) {
                return None; // ambiguous across tables: don't guess
            }
            Some((first.to_string(), column.to_string()))
        }
    }
}

/// Point lookup: does `table.column` hold the exact string `value` in
/// any row? Exact comparison, matching the engine's equality semantics
/// — a literal that differs only by case would still return an empty
/// result, so it still fails to ground.
fn value_exists(db: &Database, table: &str, column: &str, value: &str) -> bool {
    let Ok(t) = db.table(table) else {
        return false;
    };
    let Some(idx) = t.schema.column_index(column) else {
        return false;
    };
    t.rows
        .iter()
        .any(|r| matches!(r.get(idx), Some(Value::Str(s)) if s == value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema};
    use nlidb_ontology::generate_ontology;
    use nlidb_sqlir::parse_query;

    fn db() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text),
        )
        .unwrap();
        for (i, (n, c)) in [("alice", "Austin"), ("bob", "Boston")].iter().enumerate() {
            db.insert(
                "customers",
                vec![
                    Value::Int(i as i64),
                    Value::Str((*n).to_string()),
                    Value::Str((*c).to_string()),
                ],
            )
            .unwrap();
        }
        db
    }

    fn check(sql: &str, ceiling: Option<u64>) -> Vec<Rejection> {
        let db = db();
        let onto = generate_ontology(&db);
        validate_candidate(&db, &onto, &parse_query(sql).unwrap(), ceiling)
    }

    #[test]
    fn valid_grounded_query_passes() {
        assert!(check("SELECT name FROM customers WHERE city = 'Austin'", None).is_empty());
    }

    #[test]
    fn unknown_table_and_column_are_rejected() {
        let r = check("SELECT x FROM ghosts", None);
        assert!(r.iter().any(|x| x.label() == "unknown_table"), "{r:?}");
        let r = check("SELECT shoe_size FROM customers", None);
        assert_eq!(
            r,
            vec![Rejection::UnknownColumn {
                column: "shoe_size".to_string()
            }]
        );
    }

    #[test]
    fn ungrounded_value_is_rejected_with_exact_semantics() {
        let r = check("SELECT name FROM customers WHERE city = 'Paris'", None);
        assert_eq!(
            r,
            vec![Rejection::UngroundedValue {
                column: "customers.city".to_string(),
                value: "Paris".to_string()
            }]
        );
        // Case differs -> engine equality would return empty -> reject.
        let r = check("SELECT name FROM customers WHERE city = 'austin'", None);
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].label(), "ungrounded_value");
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        let r = check("SELECT name FROM customers LIMIT 0", None);
        assert!(r.iter().any(|x| x.label() == "malformed_shape"), "{r:?}");
    }

    #[test]
    fn cost_gate_matches_validation_cost_check() {
        let db = db();
        let onto = generate_ontology(&db);
        let q = parse_query("SELECT name FROM customers").unwrap();
        let plan = explain(&db, &q);
        assert!(cost_gate(&plan, Some(plan.est_cost)).is_ok());
        let err = cost_gate(&plan, Some(plan.est_cost - 1)).unwrap_err();
        assert!(matches!(err, InterpretError::CostExceeded { .. }));
        let r = validate_candidate(&db, &onto, &q, Some(plan.est_cost - 1));
        assert_eq!(
            r,
            vec![Rejection::CostExceeded {
                estimated: plan.est_cost,
                ceiling: plan.est_cost - 1
            }]
        );
    }

    #[test]
    fn rejections_recurse_into_subqueries() {
        let r = check(
            "SELECT name FROM customers WHERE id = (SELECT MAX(id) FROM ghosts)",
            None,
        );
        assert!(r
            .iter()
            .any(|x| matches!(x, Rejection::UnknownTable { table } if table == "ghosts")));
    }
}
