//! Mention detection and entity linking: mapping question spans to
//! ontology concepts, properties, and data values.
//!
//! This is the shared "lookup step" of the entity-based family: USI
//! Answers "produces the candidate entities mentioned in the query";
//! SODA looks terms up in data and metadata indices; NaLIR maps parse
//! tree nodes with a similarity function. The linker scans token
//! sub-spans longest-first, consulting the metadata index before the
//! value index, and never re-consumes a token.

use nlidb_nlp::{is_stopword, Token, TokenKind};
use nlidb_vindex::MetaKind;

use crate::pipeline::SchemaContext;

/// What a linked mention refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkKind {
    /// A concept (table).
    Concept {
        /// Concept label.
        concept: String,
    },
    /// A data property (column).
    Property {
        /// Owning concept.
        concept: String,
        /// Property label.
        property: String,
    },
    /// A data value, located to its column.
    Value {
        /// Owning concept.
        concept: String,
        /// Property label of the column holding the value.
        property: String,
        /// The stored value (original casing).
        value: String,
    },
}

/// A linked span of the question.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedMention {
    /// First token index of the span.
    pub start: usize,
    /// Number of tokens in the span.
    pub len: usize,
    /// The matched surface text (normalized).
    pub text: String,
    /// What it linked to.
    pub kind: LinkKind,
    /// Link confidence in `[0, 1]`.
    pub score: f64,
}

impl LinkedMention {
    /// Concept this mention belongs to, whatever its kind.
    pub fn concept(&self) -> &str {
        match &self.kind {
            LinkKind::Concept { concept }
            | LinkKind::Property { concept, .. }
            | LinkKind::Value { concept, .. } => concept,
        }
    }

    /// Is this a concept mention?
    pub fn is_concept(&self) -> bool {
        matches!(self.kind, LinkKind::Concept { .. })
    }

    /// Is this a property mention?
    pub fn is_property(&self) -> bool {
        matches!(self.kind, LinkKind::Property { .. })
    }

    /// Is this a value mention?
    pub fn is_value(&self) -> bool {
        matches!(self.kind, LinkKind::Value { .. })
    }
}

/// Words that carry operator/aggregate semantics and must not be
/// consumed as entity mentions.
const CUE_WORDS: &[&str] = &[
    "total",
    "sum",
    "average",
    "mean",
    "avg",
    "count",
    "number",
    "many",
    "maximum",
    "minimum",
    "max",
    "min",
    "top",
    "bottom",
    "largest",
    "smallest",
    "highest",
    "lowest",
    "biggest",
    "cheapest",
    "best",
    "worst",
    "most",
    "least",
    "greatest",
    "fewest",
    "more",
    "less",
    "fewer",
    "greater",
    "higher",
    "lower",
    "larger",
    "smaller",
    "than",
    "between",
    "over",
    "under",
    "above",
    "below",
    "least",
    "exactly",
    "without",
    "never",
    "no",
    "not",
    "each",
    "per",
    "distinct",
    "unique",
    "different",
    "order",
    "sort",
    "rank",
    "sorted",
    "ranked",
    "ordered",
    "descending",
    "ascending",
    "desc",
    "asc",
    "oldest",
    "newest",
    "earliest",
    "latest",
    "by",
    "per",
];

/// Is this (lowercased) word operator/aggregate signal vocabulary?
pub fn is_cue_word(word: &str) -> bool {
    CUE_WORDS.contains(&word)
}

fn linkable(token: &Token) -> bool {
    match token.kind {
        TokenKind::Word => !is_stopword(&token.norm) && !CUE_WORDS.contains(&token.norm.as_str()),
        TokenKind::Quoted => true,
        TokenKind::Number | TokenKind::Punct => false,
    }
}

/// Minimum acceptable link score.
const LINK_THRESHOLD: f64 = 0.78;

/// Link all mentions in a token stream. Spans are tried longest-first
/// (up to 3 tokens), metadata before values; consumed tokens are not
/// reused. Quoted tokens are only matched against values.
pub fn link_mentions(tokens: &[Token], ctx: &SchemaContext) -> Vec<LinkedMention> {
    let mut consumed = vec![false; tokens.len()];
    let mut out = Vec::new();

    for span_len in (1..=3usize).rev() {
        let mut i = 0;
        while i + span_len <= tokens.len() {
            if (i..i + span_len).any(|j| consumed[j] || !linkable(&tokens[j])) {
                i += 1;
                continue;
            }
            // Quoted spans are value-only and must be a single token.
            let has_quoted = tokens[i..i + span_len]
                .iter()
                .any(|t| t.kind == TokenKind::Quoted);
            if has_quoted && span_len > 1 {
                i += 1;
                continue;
            }
            let text: String = tokens[i..i + span_len]
                .iter()
                .map(|t| t.norm.as_str())
                .collect::<Vec<_>>()
                .join(" ");

            // Multi-token spans must match strongly (exact/stem/synonym
            // territory); weak fuzzy matches on long spans swallow
            // structural words between two real mentions.
            let meta_threshold = if span_len > 1 { 0.88 } else { LINK_THRESHOLD };
            let mut linked: Option<LinkedMention> = None;
            if !has_quoted {
                if let Some(hit) = ctx.indices.metadata.lookup(&text).into_iter().next() {
                    if hit.score >= meta_threshold {
                        linked = Some(LinkedMention {
                            start: i,
                            len: span_len,
                            text: text.clone(),
                            kind: match hit.kind {
                                MetaKind::Concept => LinkKind::Concept {
                                    concept: hit.concept,
                                },
                                MetaKind::Property => LinkKind::Property {
                                    concept: hit.concept,
                                    property: hit.property,
                                },
                            },
                            score: hit.score,
                        });
                    }
                }
            }
            if linked.is_none() {
                if let Some(vhit) = ctx.indices.values.lookup(&text).into_iter().next() {
                    let min = if has_quoted {
                        0.6
                    } else {
                        LINK_THRESHOLD + 0.07
                    };
                    if vhit.score >= min {
                        if let Some(concept) = ctx.ontology.concept_for_table(&vhit.table) {
                            if let Some(prop) = ctx
                                .ontology
                                .properties_of(&concept.label)
                                .into_iter()
                                .find(|p| p.column == vhit.column)
                            {
                                linked = Some(LinkedMention {
                                    start: i,
                                    len: span_len,
                                    text: text.clone(),
                                    kind: LinkKind::Value {
                                        concept: concept.label.clone(),
                                        property: prop.label.clone(),
                                        value: vhit.value,
                                    },
                                    score: vhit.score,
                                });
                            }
                        }
                    }
                }
            }
            if let Some(m) = linked {
                for c in consumed.iter_mut().skip(i).take(span_len) {
                    *c = true;
                }
                out.push(m);
                i += span_len;
            } else {
                i += 1;
            }
        }
    }
    out.sort_by_key(|m| m.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SchemaContext;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_nlp::tokenize;

    fn ctx() -> (Database, SchemaContext) {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        for (id, n, c) in [(1, "Ada", "Austin"), (2, "Bob", "New York")] {
            db.insert(
                "customers",
                vec![Value::Int(id), Value::from(n), Value::from(c)],
            )
            .unwrap();
        }
        db.insert(
            "orders",
            vec![Value::Int(1), Value::Int(1), Value::Float(10.0)],
        )
        .unwrap();
        let ctx = SchemaContext::build(&db);
        (db, ctx)
    }

    #[test]
    fn links_concept_property_value() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("customers in Austin"), &ctx);
        assert_eq!(m.len(), 2);
        assert!(m[0].is_concept());
        assert_eq!(m[0].concept(), "customer");
        assert!(m[1].is_value());
        assert_eq!(
            m[1].kind,
            LinkKind::Value {
                concept: "customer".into(),
                property: "city".into(),
                value: "Austin".into()
            }
        );
    }

    #[test]
    fn multiword_value_links() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("customers in new york"), &ctx);
        let val = m.iter().find(|m| m.is_value()).unwrap();
        assert_eq!(val.len, 2);
        assert_eq!(val.text, "new york");
    }

    #[test]
    fn quoted_value_links() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("customers in 'New York'"), &ctx);
        assert!(m.iter().any(|m| m.is_value()));
    }

    #[test]
    fn cue_words_not_consumed() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("total amount by city"), &ctx);
        // "total" must not become a mention; amount + city must link.
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|m| m.is_property()));
    }

    #[test]
    fn synonym_property_links() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("clients"), &ctx);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].concept(), "customer");
    }

    #[test]
    fn tokens_consumed_once() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("customer city"), &ctx);
        // "customer city" should ideally link as the property "city"
        // (with concept context), not twice.
        let mut covered = std::collections::HashSet::new();
        for mention in &m {
            for t in mention.start..mention.start + mention.len {
                assert!(covered.insert(t), "token {t} linked twice");
            }
        }
    }

    #[test]
    fn mentions_sorted_by_position() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("amount of orders of customers in Austin"), &ctx);
        for w in m.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn unknown_words_unlinked() {
        let (_db, ctx) = ctx();
        let m = link_mentions(&tokenize("show flibber glorp"), &ctx);
        assert!(m.is_empty());
    }
}
