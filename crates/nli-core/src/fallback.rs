//! Graceful degradation down the §4 family ladder.
//!
//! The survey's central qualitative claim is that interpretation
//! families *fail differently*: the hybrid and entity-based readings
//! are the most capable but depend on the most machinery, while the
//! pattern and keyword families are progressively simpler and harder
//! to break. That ordering is exactly a degradation ladder — when the
//! preferred interpreter errors (an infrastructure fault, not a
//! semantic refusal), a production front-end can fall to the next
//! family down and still answer the subset of questions inside that
//! family's [`Capabilities`](crate::entity::Capabilities) mask, as
//! long as the answer is *marked* as degraded.
//!
//! Two invariants keep this paper-faithful:
//!
//! * The ladder only ever descends. A fallback family is strictly less
//!   capable, so a degraded answer can never exceed the ceiling E1
//!   measures for the family that produced it.
//! * Degradation is for *faults*, not refusals. If the preferred
//!   family is healthy and simply cannot interpret the question, the
//!   refusal stands — silently substituting a weaker family's reading
//!   for a healthy refusal would trade precision for coverage, the
//!   opposite of the survey's enterprise-adaption guidance.

use crate::error::InterpretError;
use crate::interpretation::InterpreterKind;
use crate::pipeline::{Answer, NliPipeline};

/// The §4 degradation ladder starting at (and including) `preferred`:
/// the order a serving layer tries families when the rungs above are
/// faulted. Hybrid → entity → pattern → keyword is the paper's
/// capability ordering; the neural family's nearest structural kin are
/// the single-table families below it.
pub fn degradation_ladder(preferred: InterpreterKind) -> &'static [InterpreterKind] {
    use InterpreterKind::*;
    match preferred {
        Hybrid => &[Hybrid, Entity, Pattern, Keyword],
        Entity => &[Entity, Pattern, Keyword],
        Neural => &[Neural, Pattern, Keyword],
        Pattern => &[Pattern, Keyword],
        Keyword => &[Keyword],
    }
}

/// An answer produced below the preferred family.
#[derive(Debug, Clone)]
pub struct Degraded {
    /// The executed answer.
    pub answer: Answer,
    /// The family that actually served it.
    pub served_by: InterpreterKind,
    /// Families tried (in ladder order) that could not serve the
    /// question, with the error each produced.
    pub skipped: Vec<(InterpreterKind, InterpretError)>,
}

impl NliPipeline {
    /// Answer `question` with the families *below* `failed` on the
    /// degradation ladder, in order, returning the first success. Call
    /// this when `failed` errored for infrastructure reasons; the
    /// result is explicitly marked with the family that served it.
    ///
    /// Errors with the last family's error when the whole ladder is
    /// exhausted (or `NoInterpretation` when `failed` has no ladder
    /// below it at all).
    pub fn ask_degraded(
        &self,
        question: &str,
        failed: InterpreterKind,
    ) -> Result<Degraded, InterpretError> {
        let mut skipped = Vec::new();
        for &kind in degradation_ladder(failed).iter().skip(1) {
            match self.ask_with(question, kind) {
                Ok(answer) => {
                    return Ok(Degraded {
                        answer,
                        served_by: kind,
                        skipped,
                    })
                }
                Err(e) => skipped.push((kind, e)),
            }
        }
        Err(skipped
            .pop()
            .map(|(_, e)| e)
            .unwrap_or_else(|| InterpretError::NoInterpretation(question.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Capabilities;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_sqlir::classify;

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [
            (1, "Anvil", "tools", 10.0),
            (2, "Piano", "music", 500.0),
            (3, "Hammer", "tools", 15.0),
        ] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ladder_descends_strictly() {
        for preferred in InterpreterKind::all() {
            let ladder = degradation_ladder(preferred);
            assert_eq!(ladder[0], preferred, "ladder starts at the preferred");
            for w in ladder.windows(2) {
                // Each step down must not gain capability anywhere.
                let (hi, lo) = (Capabilities::of(w[0]), Capabilities::of(w[1]));
                assert!(!lo.aggregation || hi.aggregation, "{ladder:?}");
                assert!(!lo.joins || hi.joins, "{ladder:?}");
                assert!(!lo.nested || hi.nested, "{ladder:?}");
            }
        }
    }

    #[test]
    fn degraded_answer_is_marked_and_within_ceiling() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        // Simulate a hybrid fault on a question every family can serve.
        let d = nli
            .ask_degraded("show products in tools", InterpreterKind::Hybrid)
            .expect("entity serves the fallback");
        assert_eq!(d.served_by, InterpreterKind::Entity);
        assert!(Capabilities::of(d.served_by).permits(classify(&d.answer.query)));
        assert_eq!(
            d.answer.sql,
            "SELECT * FROM products WHERE category = 'tools'"
        );
    }

    #[test]
    fn fallbacks_never_exceed_their_mask() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        // An aggregation question: entity and pattern can serve it,
        // keyword cannot — so a keyword-only ladder must refuse.
        let q = "total price by category";
        let d = nli.ask_degraded(q, InterpreterKind::Entity).unwrap();
        assert_eq!(d.served_by, InterpreterKind::Pattern);
        assert!(Capabilities::of(d.served_by).permits(classify(&d.answer.query)));
        assert!(
            nli.ask_degraded(q, InterpreterKind::Pattern).is_err(),
            "keyword must not answer an aggregation"
        );
    }

    #[test]
    fn exhausted_ladder_reports_the_last_error() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        let err = nli
            .ask_degraded("colorless green ideas", InterpreterKind::Hybrid)
            .unwrap_err();
        assert!(matches!(err, InterpretError::NoInterpretation(_)));
        assert!(
            nli.ask_degraded("anything", InterpreterKind::Keyword)
                .is_err(),
            "keyword has no ladder below it"
        );
    }

    #[test]
    fn skipped_families_are_recorded_in_order() {
        let db = db();
        let nli = NliPipeline::standard(&db);
        // "how many products" is an aggregation: entity serves it, but
        // force the walk lower by starting below entity.
        let d = nli
            .ask_degraded("how many products", InterpreterKind::Entity)
            .expect("pattern counts");
        assert_eq!(d.served_by, InterpreterKind::Pattern);
        assert!(d.skipped.is_empty());
    }
}
