//! The interpretation model shared by all interpreter families.

use nlidb_sqlir::Query;

use crate::pipeline::SchemaContext;

/// Which family produced an interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterpreterKind {
    /// SODA-class keyword lookup.
    Keyword,
    /// SQAK-class pattern matching.
    Pattern,
    /// ATHENA/NaLIR-class ontology-driven interpretation.
    Entity,
    /// SQLNet-class learned sketch filling.
    Neural,
    /// QUEST-class hybrid.
    Hybrid,
}

impl InterpreterKind {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            InterpreterKind::Keyword => "keyword",
            InterpreterKind::Pattern => "pattern",
            InterpreterKind::Entity => "entity",
            InterpreterKind::Neural => "neural",
            InterpreterKind::Hybrid => "hybrid",
        }
    }

    /// All families in the survey's presentation order.
    pub fn all() -> [InterpreterKind; 5] {
        [
            InterpreterKind::Keyword,
            InterpreterKind::Pattern,
            InterpreterKind::Entity,
            InterpreterKind::Neural,
            InterpreterKind::Hybrid,
        ]
    }
}

impl std::fmt::Display for InterpreterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One candidate reading of a question.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    /// The generated SQL.
    pub sql: Query,
    /// Confidence in `[0, 1]`; used for ranking and clarification
    /// triggering.
    pub confidence: f64,
    /// Human-readable steps explaining how the reading was derived
    /// (entity links, patterns fired, model decisions).
    pub explanation: Vec<String>,
    /// Producing family.
    pub source: InterpreterKind,
}

impl Interpretation {
    /// Construct with a single explanation line.
    pub fn new(sql: Query, confidence: f64, source: InterpreterKind) -> Interpretation {
        Interpretation {
            sql,
            confidence,
            explanation: Vec::new(),
            source,
        }
    }

    /// Append an explanation step (builder style).
    pub fn explain(mut self, step: impl Into<String>) -> Interpretation {
        self.explanation.push(step.into());
        self
    }
}

/// An interpreter family: question in, ranked interpretations out.
///
/// `Send + Sync` is a supertrait so a trained interpreter can be shared
/// immutably across serving threads (`nlidb-serve` workers hold one
/// pipeline behind an `Arc`); interpretation itself is `&self` — all
/// mutation (training) happens before serving starts.
pub trait Interpreter: Send + Sync {
    /// Family identity.
    fn kind(&self) -> InterpreterKind;

    /// Produce ranked candidate interpretations (best first). An empty
    /// vector means the question is outside the family's competence —
    /// exactly the behaviour the survey's capability matrix measures.
    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation>;

    /// Convenience: the single best interpretation.
    fn best(&self, question: &str, ctx: &SchemaContext) -> Option<Interpretation> {
        self.interpret(question, ctx).into_iter().next()
    }
}

/// Sort interpretations by descending confidence, deterministically
/// tie-breaking on rendered SQL.
pub fn rank(mut interpretations: Vec<Interpretation>) -> Vec<Interpretation> {
    interpretations.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.sql.to_string().cmp(&b.sql.to_string()))
    });
    interpretations
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_sqlir::QueryBuilder;

    #[test]
    fn rank_orders_by_confidence_then_sql() {
        let q1 = QueryBuilder::from_table("a").build();
        let q2 = QueryBuilder::from_table("b").build();
        let i = rank(vec![
            Interpretation::new(q2.clone(), 0.5, InterpreterKind::Keyword),
            Interpretation::new(q1.clone(), 0.9, InterpreterKind::Entity),
            Interpretation::new(q1.clone(), 0.5, InterpreterKind::Keyword),
        ]);
        assert_eq!(i[0].confidence, 0.9);
        assert_eq!(i[1].sql, q1, "ties break on SQL text");
        assert_eq!(i[2].sql, q2);
    }

    #[test]
    fn explanation_builder() {
        let q = QueryBuilder::from_table("a").build();
        let i = Interpretation::new(q, 1.0, InterpreterKind::Pattern)
            .explain("matched pattern: total X by Y")
            .explain("bound X to amount");
        assert_eq!(i.explanation.len(), 2);
    }

    #[test]
    fn kind_labels_unique() {
        let labels: std::collections::HashSet<_> =
            InterpreterKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
