#![warn(missing_docs)]

//! # nlidb-core — the natural-language-interface framework
//!
//! This crate instantiates the survey's §4 taxonomy as five runnable
//! interpreter families over a common substrate:
//!
//! | Module | Paper family | Representative systems |
//! |---|---|---|
//! | [`keyword`] | entity-based (index lookup) | SODA, Précis, QUICK |
//! | [`pattern`] | entity-based (NL patterns) | SQAK, NLQ/OWL frontends |
//! | [`entity`] | entity-based (ontology-driven) | ATHENA, NaLIR, USI Answers |
//! | [`neural`] | machine-learning-based | Seq2SQL, SQLNet, TypeSQL, DBPal |
//! | [`hybrid`] | hybrid | QUEST, MEANS |
//!
//! All families implement [`Interpreter`], producing ranked
//! [`Interpretation`]s: a SQL AST plus a confidence and an explanation
//! trace. [`oql`] is the ontology-level intermediate query language
//! (ATHENA's OQL) that the entity-based interpreters emit before SQL
//! translation. [`clarify`] implements NaLIR/DialSQL-style multi-choice
//! clarification, and [`pipeline`] wires everything into a one-call
//! facade. [`fallback`] turns the family ordering into a graceful
//! degradation ladder for serving layers: when a preferred family is
//! faulted, answer with the next family down and say so.
//!
//! [`candidates`] and [`validate`] add the Ask → Plan → Approve
//! guardrail workflow: every family's ranked pool becomes a
//! [`CandidateSet`] with token-level provenance, a deterministic
//! validation pass filters candidates *before* execution
//! (schema-validity, shape, value grounding, cost ceiling), and
//! [`NliPipeline::ask_approved`](pipeline::NliPipeline::ask_approved)
//! executes the first survivor with a full [`ValidationReport`].

pub mod candidates;
pub mod clarify;
pub mod entity;
pub mod error;
pub mod fallback;
pub mod hybrid;
pub mod interpretation;
pub mod keyword;
pub mod linking;
pub mod neural;
pub mod oql;
pub mod pattern;
pub mod pipeline;
pub mod signals;
pub mod validate;

pub use candidates::{Candidate, CandidateSet, Grounding};
pub use error::InterpretError;
pub use fallback::{degradation_ladder, Degraded};
pub use interpretation::{Interpretation, Interpreter, InterpreterKind};
pub use oql::{Oql, OqlExpr, OqlPredicate, PropRef};
pub use pipeline::{ApprovedAnswer, NliPipeline, SchemaContext, ValidationReport};
pub use validate::Rejection;
