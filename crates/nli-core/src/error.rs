//! Interpreter error type.

use std::fmt;

/// Failures surfaced by interpreters and the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpretError {
    /// No interpretation could be produced for the question.
    NoInterpretation(String),
    /// The intermediate (OQL) query could not be translated to SQL.
    Translation(String),
    /// The interpreter's scope excludes this question shape (e.g. a
    /// single-table model asked a join question).
    OutOfScope(String),
    /// Engine-level failure while executing a candidate query.
    Execution(String),
    /// The plan's estimated logical cost exceeds the enforced ceiling
    /// (per-tenant admission policy); the query was refused before
    /// execution.
    CostExceeded {
        /// Estimated logical cost of the winning plan.
        estimated: u64,
        /// The ceiling it violated.
        ceiling: u64,
    },
    /// Every candidate in the set failed pre-execution validation
    /// (`validate::validate_candidate`); nothing was safe to run.
    AllCandidatesRejected {
        /// How many candidates were considered.
        count: usize,
        /// Deterministic summary of the rejection reasons.
        reasons: String,
    },
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::NoInterpretation(q) => {
                write!(f, "no interpretation found for: {q}")
            }
            InterpretError::Translation(m) => write!(f, "translation failed: {m}"),
            InterpretError::OutOfScope(m) => write!(f, "out of scope: {m}"),
            InterpretError::Execution(m) => write!(f, "execution failed: {m}"),
            InterpretError::CostExceeded { estimated, ceiling } => {
                write!(f, "plan cost {estimated} exceeds ceiling {ceiling}")
            }
            InterpretError::AllCandidatesRejected { count, reasons } => {
                write!(
                    f,
                    "all {count} candidates rejected by validation: {reasons}"
                )
            }
        }
    }
}

impl std::error::Error for InterpretError {}
