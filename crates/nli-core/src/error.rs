//! Interpreter error type.

use std::fmt;

/// Failures surfaced by interpreters and the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpretError {
    /// No interpretation could be produced for the question.
    NoInterpretation(String),
    /// The intermediate (OQL) query could not be translated to SQL.
    Translation(String),
    /// The interpreter's scope excludes this question shape (e.g. a
    /// single-table model asked a join question).
    OutOfScope(String),
    /// Engine-level failure while executing a candidate query.
    Execution(String),
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::NoInterpretation(q) => {
                write!(f, "no interpretation found for: {q}")
            }
            InterpretError::Translation(m) => write!(f, "translation failed: {m}"),
            InterpretError::OutOfScope(m) => write!(f, "out of scope: {m}"),
            InterpretError::Execution(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for InterpretError {}
