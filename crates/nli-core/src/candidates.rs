//! Ranked candidate sets with token-level provenance.
//!
//! Every interpreter family already returns its interpretations ranked
//! best-first ([`crate::interpretation::Interpreter::interpret`]); this
//! module wraps that pool into an explicit [`CandidateSet`] — the
//! "Ask" half of the Ask → Plan → Approve workflow. Each [`Candidate`]
//! carries the SQL-IR and confidence it always had, plus
//! **provenance**: which question tokens grounded which tables,
//! columns, and values of *that specific candidate's* SQL. Provenance
//! is derived deterministically by intersecting the linker's mention
//! spans ([`crate::linking::link_mentions`]) with the schema references
//! the candidate's query actually makes, so two candidates from the
//! same pool can ground the same token differently (or not at all).
//!
//! The [`Candidate::provenance_digest`] is a stable FNV-1a fingerprint
//! over family, SQL, and groundings; `serve`'s session journal records
//! it when a candidate is approved, so replay can re-prove that the
//! same candidate — grounded the same way — was approved (see
//! `serve::journal`).

use nlidb_sqlir::Query;

use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::linking::{link_mentions, LinkKind};
use crate::pipeline::SchemaContext;

/// Default candidate-set width: the top-k interpretations kept per
/// family. Five covers every pool the current families produce while
/// keeping validation work bounded.
pub const DEFAULT_TOP_K: usize = 5;

/// One question span grounded to a schema element of a candidate's SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grounding {
    /// First token index of the grounded span.
    pub start: usize,
    /// Number of tokens in the span.
    pub len: usize,
    /// The matched surface text (normalized).
    pub text: String,
    /// What the span grounded to, rendered deterministically:
    /// `concept:<table>`, `column:<table>.<column>`, or
    /// `value:<table>.<column>=<value>`.
    pub target: String,
}

impl std::fmt::Display for Grounding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}+{}] {:?} -> {}",
            self.start, self.len, self.text, self.target
        )
    }
}

/// One ranked interpretation with its provenance.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The interpretation (SQL-IR, confidence, explanation, source).
    pub interpretation: Interpretation,
    /// Position in the family's original confidence-ranked pool
    /// (0 = the pick-first baseline choice).
    pub rank: usize,
    /// Token spans that grounded this candidate's tables, columns, and
    /// values, sorted by span start.
    pub provenance: Vec<Grounding>,
}

impl Candidate {
    /// Rendered SQL text.
    pub fn sql_text(&self) -> String {
        self.interpretation.sql.to_string()
    }

    /// Stable FNV-1a digest over family, SQL text, and every
    /// grounding — the audit-trail fingerprint journaled on approval.
    /// Deterministic across runs and processes (no hasher seeds).
    pub fn provenance_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.interpretation.source.label());
        h.delim();
        h.write(&self.sql_text());
        for g in &self.provenance {
            h.delim();
            h.write(&g.start.to_string());
            h.write("+");
            h.write(&g.len.to_string());
            h.write(&g.text);
            h.write("->");
            h.write(&g.target);
        }
        h.finish()
    }
}

/// A family's ranked top-k candidates for one question.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// The question the set answers.
    pub question: String,
    /// The family that produced it.
    pub family: InterpreterKind,
    /// Candidates in the family's own confidence order, truncated to
    /// top-k.
    pub candidates: Vec<Candidate>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when the family produced nothing (out of competence).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The pick-first baseline choice, when any.
    pub fn top(&self) -> Option<&Candidate> {
        self.candidates.first()
    }
}

/// Build a family's [`CandidateSet`] for `question`: run the
/// interpreter, keep its top `k`, and derive per-candidate provenance
/// from the linker's mentions.
pub fn gather(
    interp: &dyn Interpreter,
    question: &str,
    ctx: &SchemaContext,
    k: usize,
) -> CandidateSet {
    let family = interp.kind();
    let pool = interp.interpret(question, ctx);
    let tokens = nlidb_nlp::tokenize(question);
    let mentions = link_mentions(&tokens, ctx);
    let candidates = pool
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(rank, interpretation)| {
            let provenance = derive_provenance(&mentions, &interpretation.sql, ctx);
            Candidate {
                interpretation,
                rank,
                provenance,
            }
        })
        .collect();
    CandidateSet {
        question: question.to_string(),
        family,
        candidates,
    }
}

/// Intersect the linker's mentions with the schema elements `sql`
/// actually references. A mention survives only when its referent is
/// present in the query: a concept's table must be scanned, a
/// property's column must be referenced, a value must appear as a
/// string-equality literal on its column.
fn derive_provenance(
    mentions: &[crate::linking::LinkedMention],
    sql: &Query,
    ctx: &SchemaContext,
) -> Vec<Grounding> {
    let tables = sql.referenced_tables();
    let columns = sql.referenced_columns();
    let equalities = sql.string_equalities();
    let table_of =
        |concept: &str| -> Option<&str> { ctx.ontology.concept(concept).map(|c| c.table.as_str()) };
    let column_of = |concept: &str, property: &str| -> Option<&str> {
        ctx.ontology
            .property(concept, property)
            .map(|p| p.column.as_str())
    };
    let mut out = Vec::new();
    for m in mentions {
        let target = match &m.kind {
            LinkKind::Concept { concept } => table_of(concept)
                .filter(|t| tables.iter().any(|rt| rt == t))
                .map(|t| format!("concept:{t}")),
            LinkKind::Property { concept, property } => {
                match (table_of(concept), column_of(concept, property)) {
                    (Some(t), Some(c)) => {
                        let referenced = tables.iter().any(|rt| rt == t)
                            && columns.iter().any(|cr| {
                                cr.column == c && cr.table.as_deref().is_none_or(|q| q == t)
                            });
                        referenced.then(|| format!("column:{t}.{c}"))
                    }
                    _ => None,
                }
            }
            LinkKind::Value {
                concept,
                property,
                value,
            } => match (table_of(concept), column_of(concept, property)) {
                (Some(t), Some(c)) => equalities
                    .iter()
                    .any(|(cr, v)| {
                        cr.column == c
                            && cr.table.as_deref().is_none_or(|q| q == t)
                            && v.eq_ignore_ascii_case(value)
                    })
                    .then(|| format!("value:{t}.{c}={value}")),
                _ => None,
            },
        };
        if let Some(target) = target {
            out.push(Grounding {
                start: m.start,
                len: m.len,
                text: m.text.clone(),
                target,
            });
        }
    }
    out
}

/// Seedless FNV-1a accumulator — the same digest idiom `serve` uses
/// for schema fingerprints, kept dependency-free here.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    /// Unambiguous field separator (never appears in rendered SQL).
    fn delim(&mut self) {
        self.0 ^= 0x01;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::NliPipeline;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text),
        )
        .unwrap();
        for (i, (n, c)) in [("alice", "Austin"), ("bob", "Boston"), ("cara", "Austin")]
            .iter()
            .enumerate()
        {
            db.insert(
                "customers",
                vec![
                    Value::Int(i as i64),
                    Value::Str((*n).to_string()),
                    Value::Str((*c).to_string()),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn gather_preserves_family_order_and_derives_provenance() {
        let p = NliPipeline::standard(&db());
        let set = p.candidate_set("customers with city 'Austin'", InterpreterKind::Entity, 5);
        assert_eq!(set.family, InterpreterKind::Entity);
        assert!(!set.is_empty(), "entity family should answer");
        let top = set.top().unwrap();
        assert_eq!(top.rank, 0);
        // Provenance must ground the concept and the filtered value.
        let targets: Vec<&str> = top.provenance.iter().map(|g| g.target.as_str()).collect();
        assert!(
            targets.contains(&"concept:customers"),
            "concept grounding missing: {targets:?}"
        );
        assert!(
            targets
                .iter()
                .any(|t| t.starts_with("value:customers.city=")),
            "value grounding missing: {targets:?}"
        );
        // Ranks mirror the pool order.
        for (i, c) in set.candidates.iter().enumerate() {
            assert_eq!(c.rank, i);
        }
    }

    #[test]
    fn provenance_digest_is_stable_and_discriminates() {
        let p = NliPipeline::standard(&db());
        let a = p.candidate_set("customers in 'Austin'", InterpreterKind::Entity, 5);
        let b = p.candidate_set("customers in 'Austin'", InterpreterKind::Entity, 5);
        let d1 = a.top().unwrap().provenance_digest();
        let d2 = b.top().unwrap().provenance_digest();
        assert_eq!(d1, d2, "same candidate -> same digest");
        let other = p.candidate_set("customers in 'Boston'", InterpreterKind::Entity, 5);
        assert_ne!(
            d1,
            other.top().unwrap().provenance_digest(),
            "different grounding -> different digest"
        );
    }

    #[test]
    fn top_k_truncates_the_pool() {
        let p = NliPipeline::standard(&db());
        let full = p.candidates("customers in 'Austin'", InterpreterKind::Entity);
        let set = p.candidate_set("customers in 'Austin'", InterpreterKind::Entity, 1);
        assert_eq!(set.len(), full.len().min(1));
    }
}
