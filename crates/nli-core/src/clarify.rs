//! Multi-choice clarification — the NaLIR / DialSQL interaction.
//!
//! NaLIR resolves ambiguous parse-tree mappings by asking the user;
//! DialSQL "is capable of identifying potential errors in a generated
//! SQL query and asking users for validation via simple multi-choice
//! questions". This module decides *when* to ask (close top-2
//! confidences), renders the choices, and applies the answer —
//! including a simulated-oracle mode the E9 experiment uses.

use crate::interpretation::Interpretation;

/// A rendered clarification request.
#[derive(Debug, Clone)]
pub struct Clarification {
    /// The prompt shown to the user.
    pub prompt: String,
    /// The candidate readings offered (2–3).
    pub options: Vec<Interpretation>,
}

/// Should the system ask instead of answering? True when at least two
/// candidates exist and the top two confidences are within `margin`.
pub fn needs_clarification(candidates: &[Interpretation], margin: f64) -> bool {
    match candidates {
        [first, second, ..] => (first.confidence - second.confidence).abs() <= margin,
        _ => false,
    }
}

/// Indices of the non-top candidates that sit within `margin` of the
/// top confidence — the readings a clarification would have offered.
/// The approved path (`NliPipeline::ask_approved`) uses this to
/// surface "a clarification would have been asked here" as a
/// structured annotation on the losing candidates instead of dropping
/// the ambiguity silently.
pub fn close_competitors(candidates: &[Interpretation], margin: f64) -> Vec<usize> {
    let Some(top) = candidates.first() else {
        return Vec::new();
    };
    candidates
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, c)| (top.confidence - c.confidence).abs() <= margin)
        .map(|(i, _)| i)
        .collect()
}

/// Build a multi-choice question from ranked candidates (up to 3
/// options). Returns `None` when there is nothing to disambiguate.
pub fn build_clarification(candidates: &[Interpretation]) -> Option<Clarification> {
    if candidates.len() < 2 {
        return None;
    }
    let options: Vec<Interpretation> = candidates.iter().take(3).cloned().collect();
    let mut prompt = String::from("Did you mean:\n");
    for (i, opt) in options.iter().enumerate() {
        let gloss = opt
            .explanation
            .last()
            .cloned()
            .unwrap_or_else(|| opt.sql.to_string());
        prompt.push_str(&format!("  ({}) {}\n", i + 1, gloss));
    }
    Some(Clarification { prompt, options })
}

/// Apply a user's (or oracle's) choice.
pub fn apply_choice(clarification: &Clarification, choice: usize) -> Option<Interpretation> {
    clarification.options.get(choice).cloned()
}

/// Resolve with a simulated user: the oracle returns true for the
/// reading the user intended. Falls back to the top candidate when the
/// oracle rejects everything (the user gives up and takes the default).
pub fn resolve_with_oracle(
    candidates: &[Interpretation],
    margin: f64,
    oracle: impl Fn(&Interpretation) -> bool,
) -> Option<Interpretation> {
    if candidates.is_empty() {
        return None;
    }
    if !needs_clarification(candidates, margin) {
        return candidates.first().cloned();
    }
    let clar = build_clarification(candidates)?;
    clar.options
        .iter()
        .find(|o| oracle(o))
        .cloned()
        .or_else(|| candidates.first().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpretation::InterpreterKind;
    use nlidb_sqlir::QueryBuilder;

    fn interp(table: &str, conf: f64) -> Interpretation {
        Interpretation::new(
            QueryBuilder::from_table(table).build(),
            conf,
            InterpreterKind::Entity,
        )
    }

    #[test]
    fn asks_only_when_close() {
        let close = vec![interp("a", 0.8), interp("b", 0.78)];
        let far = vec![interp("a", 0.9), interp("b", 0.5)];
        let single = vec![interp("a", 0.9)];
        assert!(needs_clarification(&close, 0.1));
        assert!(!needs_clarification(&far, 0.1));
        assert!(!needs_clarification(&single, 0.1));
        assert!(!needs_clarification(&[], 0.1));
    }

    #[test]
    fn close_competitors_finds_margin_peers_only() {
        let cands = vec![
            interp("lead", 0.80),
            interp("peer", 0.78),
            interp("also", 0.71),
            interp("far", 0.40),
        ];
        assert_eq!(close_competitors(&cands, 0.1), vec![1, 2]);
        assert_eq!(close_competitors(&cands, 0.01), Vec::<usize>::new());
        assert_eq!(close_competitors(&[], 0.1), Vec::<usize>::new());
        assert_eq!(
            close_competitors(&cands[..1], 0.1),
            Vec::<usize>::new(),
            "a single candidate has no competitors"
        );
    }

    #[test]
    fn builds_numbered_options() {
        let c = build_clarification(&[interp("a", 0.8), interp("b", 0.78)]).unwrap();
        assert_eq!(c.options.len(), 2);
        assert!(c.prompt.contains("(1)"));
        assert!(c.prompt.contains("(2)"));
        assert!(build_clarification(&[interp("a", 0.8)]).is_none());
    }

    #[test]
    fn caps_at_three_options() {
        let cands: Vec<_> = (0..5).map(|i| interp(&format!("t{i}"), 0.8)).collect();
        let c = build_clarification(&cands).unwrap();
        assert_eq!(c.options.len(), 3);
    }

    #[test]
    fn apply_choice_bounds() {
        let c = build_clarification(&[interp("a", 0.8), interp("b", 0.78)]).unwrap();
        assert!(apply_choice(&c, 1).is_some());
        assert!(apply_choice(&c, 9).is_none());
    }

    #[test]
    fn oracle_picks_intended_reading() {
        let cands = vec![interp("wrong", 0.8), interp("right", 0.79)];
        let resolved =
            resolve_with_oracle(&cands, 0.1, |i| i.sql.to_string().contains("right")).unwrap();
        assert!(resolved.sql.to_string().contains("right"));
    }

    #[test]
    fn oracle_not_consulted_when_confident() {
        let cands = vec![interp("lead", 0.95), interp("other", 0.3)];
        let resolved = resolve_with_oracle(&cands, 0.1, |_| false).unwrap();
        assert!(resolved.sql.to_string().contains("lead"));
    }

    #[test]
    fn oracle_rejects_all_falls_back() {
        let cands = vec![interp("a", 0.8), interp("b", 0.79)];
        let resolved = resolve_with_oracle(&cands, 0.1, |_| false).unwrap();
        assert!(resolved.sql.to_string().contains('a'));
        assert!(resolve_with_oracle(&[], 0.1, |_| true).is_none());
    }
}
