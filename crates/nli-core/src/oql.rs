//! OQL — the ontology-level intermediate query language.
//!
//! ATHENA "uses an intermediate query language before translating the
//! input query into SQL". Interpreters emit OQL against *concepts and
//! properties*; this module lowers OQL to SQL by mapping concepts to
//! tables, inferring the join tree (Steiner plan over the ontology's
//! relationship graph), and expanding the nested-query predicate forms
//! (anti/semi-joins, comparisons against global aggregates).

use nlidb_ontology::{JoinGraph, Ontology};
use nlidb_sqlir::ast::{
    AggFunc, BinOp, Expr, Join, JoinKind, Literal, OrderByItem, Query, SelectItem, TableSource,
};

use crate::error::InterpretError;

/// Reference to `concept.property`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropRef {
    /// Concept label.
    pub concept: String,
    /// Property label.
    pub property: String,
}

impl PropRef {
    /// Shorthand constructor.
    pub fn new(concept: impl Into<String>, property: impl Into<String>) -> PropRef {
        PropRef {
            concept: concept.into(),
            property: property.into(),
        }
    }
}

/// A projected or ordered expression at the ontology level.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlExpr {
    /// A data property.
    Prop(PropRef),
    /// An aggregate over a property; `None` means `COUNT(*)`.
    Agg(AggFunc, Option<PropRef>),
}

/// Ontology-level predicates, including the nested-query forms.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlPredicate {
    /// `prop op literal`.
    Compare {
        /// Constrained property.
        prop: PropRef,
        /// Comparison operator.
        op: BinOp,
        /// Constant.
        value: Literal,
    },
    /// `prop IN (v, …)`.
    ValueIn {
        /// Constrained property.
        prop: PropRef,
        /// Allowed constants.
        values: Vec<Literal>,
    },
    /// `prop BETWEEN low AND high` (inclusive; used for date ranges).
    Between {
        /// Constrained property.
        prop: PropRef,
        /// Lower bound.
        low: Literal,
        /// Upper bound.
        high: Literal,
    },
    /// `prop LIKE pattern`.
    Like {
        /// Constrained property.
        prop: PropRef,
        /// SQL LIKE pattern.
        pattern: String,
    },
    /// `prop op (SELECT agg(of) FROM of.concept)` — "above average
    /// price" and friends. Lowers to a scalar sub-query.
    CompareToGlobalAgg {
        /// Constrained property.
        prop: PropRef,
        /// Comparison operator.
        op: BinOp,
        /// Aggregate applied over the whole related table.
        agg: AggFunc,
        /// The aggregated property.
        of: PropRef,
    },
    /// The focus concept has no related `other` instance — anti-join,
    /// lowered to `pk NOT IN (SELECT fk FROM other)`.
    HasNoRelated {
        /// Related concept label.
        other: String,
    },
    /// The focus concept has at least one related `other` — semi-join,
    /// lowered to `pk IN (SELECT fk FROM other)`.
    HasRelated {
        /// Related concept label.
        other: String,
    },
}

/// One ORDER BY entry.
#[derive(Debug, Clone, PartialEq)]
pub struct OqlOrder {
    /// Sorted expression.
    pub expr: OqlExpr,
    /// Ascending when true.
    pub asc: bool,
}

/// An ontology-level query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Oql {
    /// The focus concept (what the question is about).
    pub focus: String,
    /// Projected expressions; empty projects `*`.
    pub select: Vec<OqlExpr>,
    /// DISTINCT flag.
    pub distinct: bool,
    /// Conjunctive predicates.
    pub predicates: Vec<OqlPredicate>,
    /// Grouping properties.
    pub group_by: Vec<PropRef>,
    /// HAVING conjuncts: `agg(prop?) op literal`.
    pub having: Vec<(AggFunc, Option<PropRef>, BinOp, Literal)>,
    /// Ordering.
    pub order_by: Vec<OqlOrder>,
    /// Row limit.
    pub limit: Option<u64>,
    /// Concepts to force into the join tree even when no projected or
    /// filtered property references them (used by related-count
    /// HAVING queries: "customers with more than 5 orders").
    pub extra_joins: Vec<String>,
}

impl Oql {
    /// New query focused on a concept.
    pub fn focused(concept: impl Into<String>) -> Oql {
        Oql {
            focus: concept.into(),
            ..Oql::default()
        }
    }

    /// All concepts the query touches through joins (focus, selected,
    /// filtered, grouped, ordered — but *not* sub-query-only concepts).
    pub fn joined_concepts(&self) -> Vec<&str> {
        let mut out: Vec<&str> = vec![self.focus.as_str()];
        fn push_concept<'a>(out: &mut Vec<&'a str>, c: &'a str) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        for e in &self.select {
            if let OqlExpr::Prop(p) | OqlExpr::Agg(_, Some(p)) = e {
                push_concept(&mut out, &p.concept);
            }
        }
        for p in &self.predicates {
            match p {
                OqlPredicate::Compare { prop, .. }
                | OqlPredicate::ValueIn { prop, .. }
                | OqlPredicate::Between { prop, .. }
                | OqlPredicate::Like { prop, .. }
                | OqlPredicate::CompareToGlobalAgg { prop, .. } => {
                    push_concept(&mut out, &prop.concept)
                }
                OqlPredicate::HasNoRelated { .. } | OqlPredicate::HasRelated { .. } => {}
            }
        }
        for g in &self.group_by {
            push_concept(&mut out, &g.concept);
        }
        for o in &self.order_by {
            if let OqlExpr::Prop(p) | OqlExpr::Agg(_, Some(p)) = &o.expr {
                push_concept(&mut out, &p.concept);
            }
        }
        for (_, prop, _, _) in &self.having {
            if let Some(p) = prop {
                push_concept(&mut out, &p.concept);
            }
        }
        for c in &self.extra_joins {
            push_concept(&mut out, c);
        }
        out
    }

    /// Lower to SQL. See module docs for the mapping.
    pub fn to_sql(&self, onto: &Ontology, graph: &JoinGraph) -> Result<Query, InterpretError> {
        let terminals = self.joined_concepts();
        let plan = graph.steiner_plan(&terminals).ok_or_else(|| {
            InterpretError::Translation(format!(
                "concepts {terminals:?} are not connected in the ontology"
            ))
        })?;
        let multi = plan.concepts.len() > 1;

        let table_of = |concept: &str| -> Result<String, InterpretError> {
            onto.concept(concept)
                .map(|c| c.table.clone())
                .ok_or_else(|| InterpretError::Translation(format!("unknown concept {concept}")))
        };
        let col_of = |p: &PropRef| -> Result<Expr, InterpretError> {
            let concept = onto.concept(&p.concept).ok_or_else(|| {
                InterpretError::Translation(format!("unknown concept {}", p.concept))
            })?;
            let dp = onto.property(&p.concept, &p.property).ok_or_else(|| {
                InterpretError::Translation(format!(
                    "unknown property {}.{}",
                    p.concept, p.property
                ))
            })?;
            Ok(if multi {
                Expr::qcol(concept.table.clone(), dp.column.clone())
            } else {
                Expr::col(dp.column.clone())
            })
        };
        let expr_of = |e: &OqlExpr| -> Result<Expr, InterpretError> {
            Ok(match e {
                OqlExpr::Prop(p) => col_of(p)?,
                OqlExpr::Agg(f, Some(p)) => Expr::Agg {
                    func: *f,
                    arg: Some(Box::new(col_of(p)?)),
                    distinct: false,
                },
                OqlExpr::Agg(f, None) => Expr::Agg {
                    func: *f,
                    arg: None,
                    distinct: false,
                },
            })
        };

        let mut query = Query {
            from: Some(TableSource::table(table_of(&plan.concepts[0])?)),
            distinct: self.distinct,
            ..Query::default()
        };
        for edge in &plan.edges {
            let from_t = table_of(&edge.from)?;
            let to_t = table_of(&edge.to)?;
            query.joins.push(Join {
                kind: JoinKind::Inner,
                source: TableSource::table(to_t.clone()),
                on: Expr::qcol(from_t, edge.from_column.clone())
                    .eq(Expr::qcol(to_t, edge.to_column.clone())),
            });
        }

        // Projection.
        if self.select.is_empty() {
            query.select.push(SelectItem::Wildcard);
        } else {
            for e in &self.select {
                query.select.push(SelectItem::expr(expr_of(e)?));
            }
        }

        // Predicates.
        let mut where_clause: Option<Expr> = None;
        let conjoin = |pred: Expr, acc: &mut Option<Expr>| {
            *acc = Some(match acc.take() {
                Some(w) => w.and(pred),
                None => pred,
            });
        };
        for p in &self.predicates {
            let pred = match p {
                OqlPredicate::Compare { prop, op, value } => {
                    col_of(prop)?.binary(*op, Expr::Literal(value.clone()))
                }
                OqlPredicate::ValueIn { prop, values } => Expr::InList {
                    expr: Box::new(col_of(prop)?),
                    list: values.iter().cloned().map(Expr::Literal).collect(),
                    negated: false,
                },
                OqlPredicate::Between { prop, low, high } => Expr::Between {
                    expr: Box::new(col_of(prop)?),
                    low: Box::new(Expr::Literal(low.clone())),
                    high: Box::new(Expr::Literal(high.clone())),
                    negated: false,
                },
                OqlPredicate::Like { prop, pattern } => Expr::Like {
                    expr: Box::new(col_of(prop)?),
                    pattern: pattern.clone(),
                    negated: false,
                },
                OqlPredicate::CompareToGlobalAgg { prop, op, agg, of } => {
                    let inner_table = table_of(&of.concept)?;
                    let inner_col = onto
                        .property(&of.concept, &of.property)
                        .ok_or_else(|| {
                            InterpretError::Translation(format!(
                                "unknown property {}.{}",
                                of.concept, of.property
                            ))
                        })?
                        .column
                        .clone();
                    let inner = Query {
                        select: vec![SelectItem::expr(Expr::Agg {
                            func: *agg,
                            arg: Some(Box::new(Expr::col(inner_col))),
                            distinct: false,
                        })],
                        from: Some(TableSource::table(inner_table)),
                        ..Query::default()
                    };
                    col_of(prop)?.binary(*op, Expr::ScalarSubquery(Box::new(inner)))
                }
                OqlPredicate::HasNoRelated { other } | OqlPredicate::HasRelated { other } => {
                    let negated = matches!(p, OqlPredicate::HasNoRelated { .. });
                    let path = graph.shortest_path(&self.focus, other).ok_or_else(|| {
                        InterpretError::Translation(format!(
                            "no relationship path {} → {other}",
                            self.focus
                        ))
                    })?;
                    let first = path.first().ok_or_else(|| {
                        InterpretError::Translation(format!(
                            "focus {} is the same as related concept {other}",
                            self.focus
                        ))
                    })?;
                    // Build the inner query over the path remainder.
                    let mut inner = Query {
                        select: vec![SelectItem::expr(Expr::qcol(
                            table_of(&first.to)?,
                            first.to_column.clone(),
                        ))],
                        from: Some(TableSource::table(table_of(&first.to)?)),
                        ..Query::default()
                    };
                    for edge in &path[1..] {
                        let from_t = table_of(&edge.from)?;
                        let to_t = table_of(&edge.to)?;
                        inner.joins.push(Join {
                            kind: JoinKind::Inner,
                            source: TableSource::table(to_t.clone()),
                            on: Expr::qcol(from_t, edge.from_column.clone())
                                .eq(Expr::qcol(to_t, edge.to_column.clone())),
                        });
                    }
                    let focus_table = table_of(&self.focus)?;
                    let outer_col = if multi {
                        Expr::qcol(focus_table, first.from_column.clone())
                    } else {
                        Expr::col(first.from_column.clone())
                    };
                    Expr::InSubquery {
                        expr: Box::new(outer_col),
                        subquery: Box::new(inner),
                        negated,
                    }
                }
            };
            conjoin(pred, &mut where_clause);
        }
        query.where_clause = where_clause;

        // GROUP BY / HAVING.
        for g in &self.group_by {
            query.group_by.push(col_of(g)?);
        }
        if !self.having.is_empty() && query.group_by.is_empty() {
            // Implicit grouping on the non-aggregate projections.
            for e in &self.select {
                if let OqlExpr::Prop(p) = e {
                    query.group_by.push(col_of(p)?);
                }
            }
        }
        let mut having: Option<Expr> = None;
        for (agg, prop, op, value) in &self.having {
            let arg = match prop {
                Some(p) => Some(Box::new(col_of(p)?)),
                None => None,
            };
            let pred = Expr::Agg {
                func: *agg,
                arg,
                distinct: false,
            }
            .binary(*op, Expr::Literal(value.clone()));
            conjoin(pred, &mut having);
        }
        query.having = having;

        // ORDER BY / LIMIT.
        for o in &self.order_by {
            query.order_by.push(OrderByItem {
                expr: expr_of(&o.expr)?,
                asc: o.asc,
            });
        }
        query.limit = self.limit;
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema};
    use nlidb_ontology::generate_ontology;

    fn setup() -> (Ontology, JoinGraph) {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::new("customers")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("city", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("amount", ColumnType::Float)
                .primary_key("id")
                .foreign_key("customer_id", "customers", "id"),
        )
        .unwrap();
        let onto = generate_ontology(&db);
        let graph = JoinGraph::from_ontology(&onto);
        (onto, graph)
    }

    #[test]
    fn single_table_selection() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("customer", "name")));
        oql.predicates.push(OqlPredicate::Compare {
            prop: PropRef::new("customer", "city"),
            op: BinOp::Eq,
            value: Literal::Str("Austin".into()),
        });
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT name FROM customers WHERE city = 'Austin'"
        );
    }

    #[test]
    fn join_inferred_for_cross_concept_props() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("customer", "name")));
        oql.select.push(OqlExpr::Agg(
            AggFunc::Sum,
            Some(PropRef::new("order", "amount")),
        ));
        oql.group_by.push(PropRef::new("customer", "name"));
        let sql = oql.to_sql(&onto, &graph).unwrap();
        let s = sql.to_string();
        assert!(
            s.contains("JOIN orders ON customers.id = orders.customer_id"),
            "{s}"
        );
        assert!(s.contains("SUM(orders.amount)"), "{s}");
        assert!(s.contains("GROUP BY customers.name"), "{s}");
    }

    #[test]
    fn has_no_related_lowers_to_not_in() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("customer", "name")));
        oql.predicates.push(OqlPredicate::HasNoRelated {
            other: "order".into(),
        });
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT name FROM customers WHERE id NOT IN \
             (SELECT orders.customer_id FROM orders)"
        );
    }

    #[test]
    fn has_related_lowers_to_in() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.predicates.push(OqlPredicate::HasRelated {
            other: "order".into(),
        });
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert!(sql
            .to_string()
            .contains("id IN (SELECT orders.customer_id FROM orders)"));
    }

    #[test]
    fn compare_to_global_agg_lowers_to_scalar_subquery() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("order");
        oql.predicates.push(OqlPredicate::CompareToGlobalAgg {
            prop: PropRef::new("order", "amount"),
            op: BinOp::Gt,
            agg: AggFunc::Avg,
            of: PropRef::new("order", "amount"),
        });
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT * FROM orders WHERE amount > (SELECT AVG(amount) FROM orders)"
        );
    }

    #[test]
    fn having_with_implicit_group_by() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("customer", "name")));
        // Count related orders: join + having.
        oql.select.push(OqlExpr::Agg(AggFunc::Count, None));
        oql.predicates.push(OqlPredicate::Compare {
            prop: PropRef::new("order", "amount"),
            op: BinOp::Gt,
            value: Literal::Float(0.0),
        });
        oql.having
            .push((AggFunc::Count, None, BinOp::Gt, Literal::Int(5)));
        let sql = oql.to_sql(&onto, &graph).unwrap();
        let s = sql.to_string();
        assert!(s.contains("GROUP BY customers.name"), "{s}");
        assert!(s.contains("HAVING COUNT(*) > 5"), "{s}");
    }

    #[test]
    fn order_and_limit() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("order");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("order", "amount")));
        oql.order_by.push(OqlOrder {
            expr: OqlExpr::Prop(PropRef::new("order", "amount")),
            asc: false,
        });
        oql.limit = Some(5);
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT amount FROM orders ORDER BY amount DESC LIMIT 5"
        );
    }

    #[test]
    fn unknown_property_errors() {
        let (onto, graph) = setup();
        let mut oql = Oql::focused("customer");
        oql.select
            .push(OqlExpr::Prop(PropRef::new("customer", "ghost")));
        assert!(matches!(
            oql.to_sql(&onto, &graph),
            Err(InterpretError::Translation(_))
        ));
    }

    #[test]
    fn unknown_concept_errors() {
        let (onto, graph) = setup();
        let oql = Oql::focused("werewolf");
        assert!(oql.to_sql(&onto, &graph).is_err());
    }

    #[test]
    fn empty_select_is_star() {
        let (onto, graph) = setup();
        let oql = Oql::focused("customer");
        let sql = oql.to_sql(&onto, &graph).unwrap();
        assert_eq!(sql.to_string(), "SELECT * FROM customers");
    }
}
