//! The machine-learning-based interpreter: a sketch-based slot-filling
//! model of the SQLNet/TypeSQL class, trained on (question, SQL)
//! pairs.
//!
//! Faithful to the family's architecture and — importantly for the
//! reproduction — to its *limitations* as the survey states them
//! (§4.2): "these systems still have limited capability of handling
//! complex queries involving multiple tables with aggregations, and
//! nested queries. In addition, they require large amounts of training
//! data."
//!
//! The sketch is WikiSQL's: `SELECT agg?(col) FROM t WHERE (col op
//! value)*` — single table, ≤2 conjunctive conditions, no GROUP BY,
//! no joins, no nesting. Training examples outside the sketch are
//! skipped, exactly as WikiSQL-regime models cannot consume Spider's
//! harder queries. Components:
//!
//! * a table scorer (bilinear) choosing the focus table,
//! * an aggregate classifier (MLP, 6 classes),
//! * a select-shape classifier (`*` vs column) and a select-column
//!   scorer (bilinear column attention),
//! * a where-count classifier (0/1/2) with per-slot column scorer and
//!   operator classifier,
//! * TypeSQL-style value grounding: condition values are pointed at
//!   from question tokens, typed against the column (numbers for
//!   measures, indexed data values for text columns).
//!
//! Question and column features are hashed bag-of-words over stemmed
//! tokens — no pretrained vectors exist offline, and the paraphrase
//! robustness the survey attributes to this family emerges from
//! seeing lexical variation *in the training data*, which the
//! benchmark generator supplies.

use nlidb_ml::{BilinearScorer, Mlp, MlpConfig};
use nlidb_nlp::{is_stopword, porter_stem, tokenize, Token, TokenKind};
use nlidb_sqlir::ast::{AggFunc, BinOp, ColumnRef, Expr, Literal, Query, SelectItem, TableSource};

use crate::interpretation::{Interpretation, Interpreter, InterpreterKind};
use crate::pipeline::SchemaContext;

/// Question feature dimensionality (hashed bag-of-words).
const QDIM: usize = 192;
/// Column feature dimensionality.
const CDIM: usize = 48;
/// Maximum WHERE conditions in the sketch.
const MAX_CONDS: usize = 2;

/// One supervised example.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// The natural-language question.
    pub question: String,
    /// The gold SQL.
    pub sql: Query,
}

fn fnv(word: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hashed, L2-normalized bag of stemmed content words.
fn hash_bow(words: impl Iterator<Item = String>, dim: usize) -> Vec<f64> {
    let mut v = vec![0.0; dim];
    let mut any = false;
    for w in words {
        let h = fnv(&w) as usize % dim;
        // Sign hashing reduces collisions' bias.
        let sign = if (fnv(&w) >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[h] += sign;
        any = true;
    }
    if any {
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        v.iter_mut().for_each(|x| *x /= norm);
    }
    v
}

fn question_features(question: &str) -> Vec<f64> {
    let tokens = tokenize(question);
    let words = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| porter_stem(&t.norm));
    // Unigrams + adjacent bigrams.
    let unis: Vec<String> = words.collect();
    let bis: Vec<String> = unis
        .windows(2)
        .map(|w| format!("{}_{}", w[0], w[1]))
        .collect();
    hash_bow(unis.into_iter().chain(bis), QDIM)
}

fn column_features(table: &str, column_label: &str) -> Vec<f64> {
    let words = column_label
        .split_whitespace()
        .map(|w| porter_stem(&w.to_lowercase()))
        .chain(std::iter::once(porter_stem(&table.to_lowercase())));
    hash_bow(words, CDIM)
}

fn table_features(table: &str, columns: &[String]) -> Vec<f64> {
    let words = std::iter::once(table.to_lowercase())
        .chain(columns.iter().map(|c| c.to_lowercase()))
        .flat_map(|s| s.split([' ', '_']).map(porter_stem).collect::<Vec<_>>());
    hash_bow(words, CDIM)
}

/// Aggregate classes: index ↔ function.
const AGG_CLASSES: [Option<AggFunc>; 6] = [
    None,
    Some(AggFunc::Count),
    Some(AggFunc::Sum),
    Some(AggFunc::Avg),
    Some(AggFunc::Min),
    Some(AggFunc::Max),
];

/// Operator classes for condition slots.
const OP_CLASSES: [BinOp; 5] = [BinOp::Eq, BinOp::Gt, BinOp::Lt, BinOp::GtEq, BinOp::LtEq];

/// A gold sketch extracted from a single-table query.
#[derive(Debug, Clone, PartialEq)]
struct Sketch {
    table: String,
    agg: usize,                           // index into AGG_CLASSES
    sel_col: Option<String>,              // None = `*` or COUNT(*)
    conds: Vec<(String, usize, Literal)>, // (column, op class, value)
}

/// Extract the WikiSQL-style sketch, or `None` when the query exceeds
/// the family's reach (joins, nesting, grouping, ordering).
fn extract_sketch(sql: &Query) -> Option<Sketch> {
    if !sql.joins.is_empty()
        || sql.has_subquery()
        || !sql.group_by.is_empty()
        || sql.having.is_some()
        || !sql.order_by.is_empty()
        || sql.distinct
        || sql.select.len() != 1
    {
        return None;
    }
    let Some(TableSource::Table { name, .. }) = &sql.from else {
        return None;
    };
    let (agg, sel_col) = match &sql.select[0] {
        SelectItem::Wildcard => (0usize, None),
        SelectItem::Expr { expr, .. } => match expr {
            Expr::Column(c) => (0usize, Some(c.column.clone())),
            Expr::Agg {
                func,
                arg,
                distinct: false,
            } => {
                let idx = AGG_CLASSES
                    .iter()
                    .position(|a| *a == Some(*func))
                    .unwrap_or(0);
                match arg {
                    Some(a) => match a.as_ref() {
                        Expr::Column(c) => (idx, Some(c.column.clone())),
                        _ => return None,
                    },
                    None => (idx, None),
                }
            }
            _ => return None,
        },
    };
    let mut conds = Vec::new();
    if let Some(w) = &sql.where_clause {
        if !collect_conjuncts(w, &mut conds) {
            return None;
        }
    }
    if conds.len() > MAX_CONDS {
        return None;
    }
    Some(Sketch {
        table: name.clone(),
        agg,
        sel_col,
        conds,
    })
}

fn collect_conjuncts(e: &Expr, out: &mut Vec<(String, usize, Literal)>) -> bool {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => collect_conjuncts(left, out) && collect_conjuncts(right, out),
        Expr::Binary { left, op, right } => {
            let Some(op_idx) = OP_CLASSES.iter().position(|o| o == op) else {
                return false;
            };
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) => {
                    out.push((c.column.clone(), op_idx, l.clone()));
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// The trained model.
struct Model {
    table_scorer: BilinearScorer,
    agg: Mlp,
    sel_shape: Mlp, // 0 = `*`, 1 = column
    sel_col: BilinearScorer,
    where_count: Mlp,
    cond_col: BilinearScorer,
    cond_op: Mlp, // input = [qfeat, colfeat]
    /// Tables seen in training (name, column labels).
    tables: Vec<(String, Vec<String>)>,
}

/// SQLNet-class interpreter. Untrained instances produce no
/// interpretations (they have no model to fill the sketch with).
pub struct NeuralInterpreter {
    model: Option<Model>,
}

impl NeuralInterpreter {
    /// An untrained model: interprets nothing.
    pub fn untrained() -> NeuralInterpreter {
        NeuralInterpreter { model: None }
    }

    /// Is a model loaded?
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Train on (question, SQL) pairs against a schema context. Pairs
    /// whose SQL exceeds the sketch (joins, nesting, grouping) are
    /// skipped — the family's documented ceiling. Returns an
    /// untrained interpreter if nothing survives.
    pub fn train(examples: &[TrainingExample], ctx: &SchemaContext, seed: u64) -> Self {
        let sketches: Vec<(String, Sketch)> = examples
            .iter()
            .filter_map(|ex| extract_sketch(&ex.sql).map(|s| (ex.question.clone(), s)))
            .collect();
        if sketches.is_empty() {
            return NeuralInterpreter::untrained();
        }

        // Schema feature tables come from the ontology (cross-domain
        // transfer: features depend on names, not table identity).
        let tables: Vec<(String, Vec<String>)> = ctx
            .ontology
            .concepts
            .iter()
            .map(|c| {
                let cols = ctx
                    .ontology
                    .properties_of(&c.label)
                    .iter()
                    .map(|p| p.column.clone())
                    .collect();
                (c.table.clone(), cols)
            })
            .collect();

        let cfg_small = MlpConfig {
            hidden: 32,
            epochs: 80,
            lr: 0.08,
            seed,
            l2: 1e-4,
        };
        let mut model = Model {
            table_scorer: BilinearScorer::new(QDIM, CDIM, seed ^ 0xA),
            agg: Mlp::new(QDIM, AGG_CLASSES.len(), &cfg_small),
            sel_shape: Mlp::new(QDIM, 2, &cfg_small),
            sel_col: BilinearScorer::new(QDIM, CDIM, seed ^ 0xB),
            where_count: Mlp::new(QDIM, MAX_CONDS + 1, &cfg_small),
            cond_col: BilinearScorer::new(QDIM, CDIM, seed ^ 0xC),
            cond_op: Mlp::new(QDIM + CDIM, OP_CLASSES.len(), &cfg_small),
            tables,
        };

        // Assemble training sets.
        let mut qfeats: Vec<Vec<f64>> = Vec::with_capacity(sketches.len());
        for (q, _) in &sketches {
            qfeats.push(question_features(q));
        }
        let agg_labels: Vec<usize> = sketches.iter().map(|(_, s)| s.agg).collect();
        let shape_labels: Vec<usize> = sketches
            .iter()
            .map(|(_, s)| usize::from(s.sel_col.is_some() && s.agg == 0))
            .collect();
        let wc_labels: Vec<usize> = sketches
            .iter()
            .map(|(_, s)| s.conds.len().min(MAX_CONDS))
            .collect();

        model.agg.train(&qfeats, &agg_labels, &cfg_small);
        model.sel_shape.train(&qfeats, &shape_labels, &cfg_small);
        model.where_count.train(&qfeats, &wc_labels, &cfg_small);

        // Scorer triples.
        let mut table_triples = Vec::new();
        let mut selcol_triples = Vec::new();
        let mut condcol_triples = Vec::new();
        let mut op_x = Vec::new();
        let mut op_y = Vec::new();
        for ((_, s), qf) in sketches.iter().zip(&qfeats) {
            for (tname, tcols) in &model.tables {
                table_triples.push((qf.clone(), table_features(tname, tcols), tname == &s.table));
            }
            let Some((_, cols)) = model.tables.iter().find(|(t, _)| t == &s.table) else {
                continue;
            };
            if let Some(sel) = &s.sel_col {
                for c in cols {
                    selcol_triples.push((qf.clone(), column_features(&s.table, c), c == sel));
                }
            }
            for (cc, op_idx, _) in &s.conds {
                for c in cols {
                    condcol_triples.push((qf.clone(), column_features(&s.table, c), c == cc));
                }
                let mut x = qf.clone();
                x.extend(column_features(&s.table, cc));
                op_x.push(x);
                op_y.push(*op_idx);
            }
        }
        model.table_scorer.train(&table_triples, 25, 0.12);
        model.sel_col.train(&selcol_triples, 25, 0.12);
        model.cond_col.train(&condcol_triples, 25, 0.12);
        let op_cfg = MlpConfig {
            hidden: 24,
            epochs: 80,
            lr: 0.08,
            seed: seed ^ 0xD,
            l2: 1e-4,
        };
        let mut op_mlp = Mlp::new(QDIM + CDIM, OP_CLASSES.len(), &op_cfg);
        op_mlp.train(&op_x, &op_y, &op_cfg);
        model.cond_op = op_mlp;

        NeuralInterpreter { model: Some(model) }
    }
}

/// Ground a condition value from the question for a given column.
fn ground_value(
    question_tokens: &[Token],
    table: &str,
    column: &str,
    numeric: bool,
    used_numbers: &mut Vec<usize>,
    ctx: &SchemaContext,
) -> Option<Literal> {
    if numeric {
        for (i, t) in question_tokens.iter().enumerate() {
            if t.kind == TokenKind::Number && !used_numbers.contains(&i) {
                // Skip numbers that look like LIMIT counts after "top".
                let prev = i
                    .checked_sub(1)
                    .map(|j| question_tokens[j].norm.as_str())
                    .unwrap_or("");
                if prev == "top" || prev == "bottom" {
                    continue;
                }
                used_numbers.push(i);
                let v = t.as_number()?;
                return Some(if v.fract() == 0.0 {
                    Literal::Int(v as i64)
                } else {
                    Literal::Float(v)
                });
            }
        }
        return None;
    }
    // Text column: quoted tokens first, then indexed span lookup.
    for t in question_tokens {
        if t.kind == TokenKind::Quoted {
            if let Some(hit) = ctx
                .indices
                .values
                .lookup(&t.norm)
                .into_iter()
                .find(|h| h.table == table && h.column == column)
            {
                return Some(Literal::Str(hit.value));
            }
            return Some(Literal::Str(t.norm.clone()));
        }
    }
    // Try 1-2 token spans against the value index, scoped to column.
    let words: Vec<&Token> = question_tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Word && !is_stopword(&t.norm))
        .collect();
    for len in (1..=2usize).rev() {
        for win in words.windows(len) {
            let text = win
                .iter()
                .map(|t| t.norm.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if let Some(hit) = ctx
                .indices
                .values
                .lookup(&text)
                .into_iter()
                .find(|h| h.table == table && h.column == column && h.score >= 0.85)
            {
                return Some(Literal::Str(hit.value));
            }
        }
    }
    None
}

/// The monolithic contrast case for the sketch architecture — the
/// ablation DESIGN.md calls out (SQLNet's argument against Seq2SQL's
/// sequence decoding, reduced to its essence): memorize whole
/// (question, SQL) pairs and answer with the nearest neighbor's SQL
/// verbatim. No slot structure means no recombination: unseen
/// value/column combinations cannot be produced, only replayed.
pub struct NearestNeighborBaseline {
    memory: Vec<(Vec<f64>, Query)>,
}

impl NearestNeighborBaseline {
    /// Memorize the training pairs (all of them — a monolithic model
    /// has no sketch to be limited by).
    pub fn train(examples: &[TrainingExample]) -> NearestNeighborBaseline {
        NearestNeighborBaseline {
            memory: examples
                .iter()
                .map(|ex| (question_features(&ex.question), ex.sql.clone()))
                .collect(),
        }
    }

    /// Number of memorized pairs.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Answer with the nearest training question's SQL (cosine over
    /// the same hashed features the sketch model uses). Returns the
    /// similarity as the confidence.
    pub fn predict(&self, question: &str) -> Option<(Query, f64)> {
        let qf = question_features(question);
        let mut best: Option<(&Query, f64)> = None;
        for (f, sql) in &self.memory {
            let sim: f64 = qf.iter().zip(f).map(|(a, b)| a * b).sum();
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((sql, sim));
            }
        }
        best.map(|(sql, sim)| (sql.clone(), sim))
    }
}

impl Interpreter for NeuralInterpreter {
    fn kind(&self) -> InterpreterKind {
        InterpreterKind::Neural
    }

    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation> {
        let Some(model) = &self.model else {
            return Vec::new();
        };
        // Schema features come from the *evaluation* context, so a
        // trained model can be pointed at a new database (the
        // cross-domain transfer setting of E3); features are
        // name-derived, so transfer succeeds exactly to the extent the
        // new schema's vocabulary resembles the training schema's.
        let tables: Vec<(String, Vec<String>)> = ctx
            .ontology
            .concepts
            .iter()
            .map(|c| {
                let cols = ctx
                    .ontology
                    .properties_of(&c.label)
                    .iter()
                    .map(|p| p.column.clone())
                    .collect();
                (c.table.clone(), cols)
            })
            .collect();
        if tables.is_empty() {
            return Vec::new();
        }
        let qf = question_features(question);
        let tokens = tokenize(question);

        // 1. Table.
        let tfeats: Vec<Vec<f64>> = tables
            .iter()
            .map(|(t, cols)| table_features(t, cols))
            .collect();
        let t_idx = model
            .table_scorer
            .best(&qf, tfeats.iter().map(|f| f.as_slice()));
        // Table-choice certainty feeds the overall confidence: a
        // question whose vocabulary matches no table well should not
        // produce a confident sketch.
        let t_scores: Vec<f64> = tfeats
            .iter()
            .map(|f| model.table_scorer.score(&qf, f))
            .collect();
        let t_proba = nlidb_ml::matrix::softmax(&t_scores);
        let (table, cols) = &tables[t_idx];
        let colfeats: Vec<Vec<f64>> = cols.iter().map(|c| column_features(table, c)).collect();
        let numeric_col = |c: &str| -> bool {
            ctx.ontology
                .concept_for_table(table)
                .and_then(|con| {
                    ctx.ontology
                        .properties_of(&con.label)
                        .into_iter()
                        .find(|p| p.column == c)
                        .map(|p| {
                            matches!(
                                p.role,
                                nlidb_ontology::PropertyRole::Measure
                                    | nlidb_ontology::PropertyRole::Identifier
                            )
                        })
                })
                .unwrap_or(false)
        };

        // 2. Aggregate + select.
        let agg_proba = model.agg.predict_proba(&qf);
        let agg_idx = nlidb_ml::matrix::argmax(&agg_proba);
        let shape_proba = model.sel_shape.predict_proba(&qf);
        let table_certainty = if t_proba.len() > 1 {
            // Rescale: uniform → 0, one-hot → 1.
            let uniform = 1.0 / t_proba.len() as f64;
            ((t_proba[t_idx] - uniform) / (1.0 - uniform)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let mut confidence = agg_proba[agg_idx] * (0.4 + 0.6 * table_certainty);

        let select_item = match AGG_CLASSES[agg_idx] {
            None => {
                if shape_proba[1] > shape_proba[0] && !cols.is_empty() {
                    let ci = model
                        .sel_col
                        .best(&qf, colfeats.iter().map(|f| f.as_slice()));
                    confidence *= shape_proba[1];
                    SelectItem::expr(Expr::Column(ColumnRef::bare(cols[ci].clone())))
                } else {
                    confidence *= shape_proba[0];
                    SelectItem::Wildcard
                }
            }
            Some(AggFunc::Count) => SelectItem::expr(Expr::count_star()),
            Some(func) => {
                if cols.is_empty() {
                    return Vec::new();
                }
                let ci = model
                    .sel_col
                    .best(&qf, colfeats.iter().map(|f| f.as_slice()));
                SelectItem::expr(Expr::agg(func, Expr::col(cols[ci].clone())))
            }
        };

        // 3. Conditions.
        let wc_proba = model.where_count.predict_proba(&qf);
        let wc = nlidb_ml::matrix::argmax(&wc_proba);
        confidence *= wc_proba[wc];
        let mut where_clause: Option<Expr> = None;
        let mut used_cols: Vec<usize> = Vec::new();
        let mut used_numbers: Vec<usize> = Vec::new();
        for _slot in 0..wc {
            // Best unused column for a condition.
            let mut ranked: Vec<(usize, f64)> = colfeats
                .iter()
                .enumerate()
                .filter(|(i, _)| !used_cols.contains(i))
                .map(|(i, f)| (i, model.cond_col.score(&qf, f)))
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let Some(&(ci, _)) = ranked.first() else {
                break;
            };
            used_cols.push(ci);
            let mut op_in = qf.clone();
            op_in.extend(colfeats[ci].iter());
            let op_proba = model.cond_op.predict_proba(&op_in);
            let op = OP_CLASSES[nlidb_ml::matrix::argmax(&op_proba)];
            let is_num = numeric_col(&cols[ci]);
            let Some(value) =
                ground_value(&tokens, table, &cols[ci], is_num, &mut used_numbers, ctx)
            else {
                continue;
            };
            let pred = Expr::col(cols[ci].clone()).binary(op, Expr::Literal(value));
            where_clause = Some(match where_clause.take() {
                Some(w) => w.and(pred),
                None => pred,
            });
        }

        let sql = Query {
            select: vec![select_item],
            from: Some(TableSource::table(table.clone())),
            where_clause,
            ..Query::default()
        };
        vec![Interpretation::new(
            sql,
            (0.35 + 0.65 * confidence).min(1.0),
            InterpreterKind::Neural,
        )
        .explain(format!(
            "sketch: table={table}, agg class {agg_idx}, {wc} conditions"
        ))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_sqlir::parse_query;

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [
            (1, "Anvil", "tools", 10.0),
            (2, "Rope", "tools", 5.0),
            (3, "Piano", "music", 500.0),
            (4, "Flute", "music", 90.0),
        ] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        SchemaContext::build(&db)
    }

    fn examples() -> Vec<TrainingExample> {
        let mk = |q: &str, sql: &str| TrainingExample {
            question: q.to_string(),
            sql: parse_query(sql).unwrap(),
        };
        let mut out = Vec::new();
        // Repeat template families with lexical variety.
        for (q, s) in [
            ("show all products", "SELECT * FROM products"),
            ("list every product", "SELECT * FROM products"),
            ("display products", "SELECT * FROM products"),
            (
                "show products in tools",
                "SELECT * FROM products WHERE category = 'tools'",
            ),
            (
                "list products in music",
                "SELECT * FROM products WHERE category = 'music'",
            ),
            (
                "products with price greater than 50",
                "SELECT * FROM products WHERE price > 50",
            ),
            (
                "products with price more than 100",
                "SELECT * FROM products WHERE price > 100",
            ),
            (
                "products with price less than 20",
                "SELECT * FROM products WHERE price < 20",
            ),
            (
                "products cheaper than 9",
                "SELECT * FROM products WHERE price < 9",
            ),
            (
                "how many products are there",
                "SELECT COUNT(*) FROM products",
            ),
            ("count the products", "SELECT COUNT(*) FROM products"),
            ("number of products", "SELECT COUNT(*) FROM products"),
            (
                "average price of products",
                "SELECT AVG(price) FROM products",
            ),
            ("mean price of products", "SELECT AVG(price) FROM products"),
            ("total price of products", "SELECT SUM(price) FROM products"),
            ("sum of product price", "SELECT SUM(price) FROM products"),
            (
                "maximum price of products",
                "SELECT MAX(price) FROM products",
            ),
            (
                "minimum price of products",
                "SELECT MIN(price) FROM products",
            ),
            ("names of products", "SELECT name FROM products"),
            ("show the product names", "SELECT name FROM products"),
            ("categories of products", "SELECT category FROM products"),
        ] {
            out.push(mk(q, s));
            out.push(mk(q, s)); // duplicate to densify the tiny set
        }
        out
    }

    #[test]
    fn sketch_extraction_bounds() {
        let ok = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 AND b > 2").unwrap();
        assert!(extract_sketch(&ok).is_some());
        let join = parse_query("SELECT a FROM t JOIN u ON t.id = u.tid").unwrap();
        assert!(extract_sketch(&join).is_none(), "joins exceed the sketch");
        let nested = parse_query("SELECT * FROM t WHERE id IN (SELECT x FROM u)").unwrap();
        assert!(
            extract_sketch(&nested).is_none(),
            "nesting exceeds the sketch"
        );
        let grouped = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
        assert!(
            extract_sketch(&grouped).is_none(),
            "grouping exceeds the sketch"
        );
        let three = parse_query("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3").unwrap();
        assert!(
            extract_sketch(&three).is_none(),
            ">2 conditions exceed the sketch"
        );
    }

    #[test]
    fn untrained_interprets_nothing() {
        let ctx = ctx();
        assert!(NeuralInterpreter::untrained()
            .interpret("how many products", &ctx)
            .is_empty());
        assert!(!NeuralInterpreter::untrained().is_trained());
    }

    #[test]
    fn trains_and_answers_in_domain() {
        let ctx = ctx();
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        assert!(n.is_trained());
        let i = n.best("how many products are there", &ctx).unwrap();
        assert_eq!(i.sql.to_string(), "SELECT COUNT(*) FROM products");
        let i = n.best("average price of products", &ctx).unwrap();
        assert_eq!(i.sql.to_string(), "SELECT AVG(price) FROM products");
    }

    #[test]
    fn grounds_text_condition_values() {
        let ctx = ctx();
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        let i = n.best("show products in tools", &ctx).unwrap();
        assert_eq!(
            i.sql.to_string(),
            "SELECT * FROM products WHERE category = 'tools'"
        );
    }

    #[test]
    fn ungrounded_quoted_literals_are_flagged_by_validation() {
        // Same data as ctx(), built locally so validation can
        // point-check the stored values.
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [
            (1, "Anvil", "tools", 10.0),
            (2, "Rope", "tools", 5.0),
            (3, "Piano", "music", 500.0),
            (4, "Flute", "music", 90.0),
        ] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        let ctx = SchemaContext::build(&db);
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        // A quoted value with no index hit is copied into the SQL
        // verbatim — the candidate *parses* but can only return an
        // empty answer. The validation layer catches exactly this.
        let set = crate::candidates::gather(&n, "show products in 'gadgets'", &ctx, 5);
        assert!(!set.is_empty(), "sketch should still fire");
        let top = set.top().unwrap();
        assert!(
            top.sql_text().contains("'gadgets'"),
            "verbatim literal expected: {}",
            top.sql_text()
        );
        let r =
            crate::validate::validate_candidate(&db, &ctx.ontology, &top.interpretation.sql, None);
        assert!(
            r.iter().any(|x| x.label() == "ungrounded_value"),
            "validation must flag the ungrounded literal: {r:?}"
        );
    }

    #[test]
    fn grounds_numeric_condition_values() {
        let ctx = ctx();
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        let i = n.best("products with price greater than 70", &ctx).unwrap();
        assert_eq!(i.sql.to_string(), "SELECT * FROM products WHERE price > 70");
    }

    #[test]
    fn robust_to_unseen_paraphrase_of_seen_words() {
        let ctx = ctx();
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        // "count" and "products" both seen, but this exact phrasing not.
        let i = n.best("count of all the products", &ctx).unwrap();
        assert_eq!(i.sql.to_string(), "SELECT COUNT(*) FROM products");
    }

    #[test]
    fn training_skips_out_of_sketch_examples_entirely() {
        let ctx = ctx();
        let hard = vec![TrainingExample {
            question: "products without orders".into(),
            sql: parse_query("SELECT * FROM p WHERE id NOT IN (SELECT pid FROM o)").unwrap(),
        }];
        let n = NeuralInterpreter::train(&hard, &ctx, 7);
        assert!(!n.is_trained(), "nothing trainable inside the sketch");
    }

    #[test]
    fn nearest_neighbor_replays_but_cannot_recombine() {
        let ctx = ctx();
        let nn = NearestNeighborBaseline::train(&examples());
        assert!(!nn.is_empty());
        assert!(nn.len() > 20);
        // Exact repeat of a training question: perfect.
        let (sql, sim) = nn.predict("show products in tools").unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT * FROM products WHERE category = 'tools'"
        );
        assert!(sim > 0.99);
        // Unseen value with seen vocabulary: the sketch model grounds
        // the new value; the monolithic baseline can only replay an old
        // one and gets the literal wrong.
        let sketch = NeuralInterpreter::train(&examples(), &ctx, 7);
        let sketch_sql = sketch
            .best("products with price greater than 77", &ctx)
            .unwrap()
            .sql
            .to_string();
        assert_eq!(sketch_sql, "SELECT * FROM products WHERE price > 77");
        let (nn_sql, _) = nn.predict("products with price greater than 77").unwrap();
        assert_ne!(
            nn_sql.to_string(),
            "SELECT * FROM products WHERE price > 77",
            "a memorizer cannot produce an unseen literal"
        );
    }

    #[test]
    fn never_produces_joins_or_nesting() {
        let ctx = ctx();
        let n = NeuralInterpreter::train(&examples(), &ctx, 7);
        for q in [
            "total order amount by customer city",
            "products without orders",
            "customers with more than 5 orders",
        ] {
            for i in n.interpret(q, &ctx) {
                assert!(i.sql.joins.is_empty());
                assert!(!i.sql.has_subquery());
                assert!(i.sql.group_by.is_empty());
            }
        }
    }
}
