//! The hybrid interpreter (QUEST / MEANS class).
//!
//! §4.3: hybrids "combine entity- and learning-based query
//! understanding in a multi-step strategy, using one of the two
//! approaches as a filtering mechanism". This implementation:
//!
//! 1. runs the entity-based interpreter (high precision, higher query
//!    complexity);
//! 2. runs the neural sketch model when one is trained (high recall
//!    under paraphrase);
//! 3. uses an HMM token tagger — QUEST's entity-choice machinery,
//!    trained on the same (question, SQL) pairs — to estimate how much
//!    of the question carries schema/value information, re-weighting
//!    the two families' confidences;
//! 4. ranks the merged pool: agreement between families boosts
//!    confidence; entity leads when confident, the neural model covers
//!    the paraphrase-heavy long tail.

use nlidb_ml::Hmm;
use nlidb_nlp::{porter_stem, tokenize, TokenKind};
use nlidb_sqlir::ast::{Expr, Literal, Query, SelectItem};

use crate::entity::EntityInterpreter;
use crate::interpretation::{rank, Interpretation, Interpreter, InterpreterKind};
use crate::neural::{NeuralInterpreter, TrainingExample};
use crate::pipeline::SchemaContext;

/// Entity-confidence threshold above which the entity reading leads
/// outright.
const ENTITY_LEAD: f64 = 0.80;

/// HMM tag set.
const TAG_SKIP: usize = 0;
const TAG_SCHEMA: usize = 1;
const TAG_VALUE: usize = 2;
const TAG_NUMBER: usize = 3;
const N_TAGS: usize = 4;

/// QUEST-class hybrid interpreter.
pub struct HybridInterpreter {
    entity: EntityInterpreter,
    neural: Option<NeuralInterpreter>,
    hmm: Option<Hmm>,
}

impl Default for HybridInterpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl HybridInterpreter {
    /// Untrained hybrid: entity-only until [`HybridInterpreter::train`]
    /// or [`HybridInterpreter::set_neural`] is called.
    pub fn new() -> HybridInterpreter {
        HybridInterpreter {
            entity: EntityInterpreter::new(),
            neural: None,
            hmm: None,
        }
    }

    /// Install an externally trained neural model.
    pub fn set_neural(&mut self, neural: NeuralInterpreter) {
        self.neural = Some(neural);
    }

    /// Train both learned components from (question, SQL) pairs.
    pub fn train(&mut self, examples: &[TrainingExample], ctx: &SchemaContext, seed: u64) {
        self.neural = Some(NeuralInterpreter::train(examples, ctx, seed));
        self.hmm = Some(train_tagger(examples));
    }

    /// Is a neural component loaded?
    pub fn has_neural(&self) -> bool {
        self.neural
            .as_ref()
            .map(|n| n.is_trained())
            .unwrap_or(false)
    }
}

/// Token-tag training data derived from gold SQL: a token is SCHEMA if
/// its stem occurs in a referenced table/column name, VALUE if it
/// occurs inside a string literal, NUMBER if numeric, else SKIP.
fn train_tagger(examples: &[TrainingExample]) -> Hmm {
    let mut sequences = Vec::with_capacity(examples.len());
    for ex in examples {
        let (schema_stems, value_words) = sql_vocabulary(&ex.sql);
        let seq: Vec<(String, usize)> = tokenize(&ex.question)
            .into_iter()
            .map(|t| {
                let tag = match t.kind {
                    TokenKind::Number => TAG_NUMBER,
                    TokenKind::Quoted => TAG_VALUE,
                    TokenKind::Punct => TAG_SKIP,
                    TokenKind::Word => {
                        let stem = porter_stem(&t.norm);
                        if schema_stems.contains(&stem) {
                            TAG_SCHEMA
                        } else if value_words.contains(&t.norm) {
                            TAG_VALUE
                        } else {
                            TAG_SKIP
                        }
                    }
                };
                (t.norm, tag)
            })
            .collect();
        if !seq.is_empty() {
            sequences.push(seq);
        }
    }
    Hmm::train_supervised(&sequences, N_TAGS)
}

/// Collect (stemmed schema words, lowercased value words) from a query.
fn sql_vocabulary(sql: &Query) -> (Vec<String>, Vec<String>) {
    let mut schema = Vec::new();
    let mut values = Vec::new();
    fn visit_expr(e: &Expr, schema: &mut Vec<String>, values: &mut Vec<String>) {
        match e {
            Expr::Column(c) => {
                for part in c.column.split('_') {
                    schema.push(porter_stem(&part.to_lowercase()));
                }
            }
            Expr::Literal(Literal::Str(s)) => {
                for w in s.split_whitespace() {
                    values.push(w.to_lowercase());
                }
            }
            Expr::Binary { left, right, .. } => {
                visit_expr(left, schema, values);
                visit_expr(right, schema, values);
            }
            Expr::Unary { expr, .. } => visit_expr(expr, schema, values),
            Expr::Agg { arg: Some(a), .. } => visit_expr(a, schema, values),
            Expr::Between {
                expr, low, high, ..
            } => {
                visit_expr(expr, schema, values);
                visit_expr(low, schema, values);
                visit_expr(high, schema, values);
            }
            Expr::InList { expr, list, .. } => {
                visit_expr(expr, schema, values);
                for i in list {
                    visit_expr(i, schema, values);
                }
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => visit_expr(expr, schema, values),
            Expr::InSubquery { expr, subquery, .. } => {
                visit_expr(expr, schema, values);
                let (s, v) = sql_vocabulary(subquery);
                schema.extend(s);
                values.extend(v);
            }
            Expr::Exists { subquery, .. } | Expr::ScalarSubquery(subquery) => {
                let (s, v) = sql_vocabulary(subquery);
                schema.extend(s);
                values.extend(v);
            }
            _ => {}
        }
    }
    if let Some(nlidb_sqlir::ast::TableSource::Table { name, .. }) = &sql.from {
        for part in name.split('_') {
            schema.push(porter_stem(&part.to_lowercase()));
        }
    }
    for j in &sql.joins {
        if let nlidb_sqlir::ast::TableSource::Table { name, .. } = &j.source {
            for part in name.split('_') {
                schema.push(porter_stem(&part.to_lowercase()));
            }
        }
        visit_expr(&j.on, &mut schema, &mut values);
    }
    for s in &sql.select {
        if let SelectItem::Expr { expr, .. } = s {
            visit_expr(expr, &mut schema, &mut values);
        }
    }
    if let Some(w) = &sql.where_clause {
        visit_expr(w, &mut schema, &mut values);
    }
    for g in &sql.group_by {
        visit_expr(g, &mut schema, &mut values);
    }
    if let Some(h) = &sql.having {
        visit_expr(h, &mut schema, &mut values);
    }
    for o in &sql.order_by {
        visit_expr(&o.expr, &mut schema, &mut values);
    }
    (schema, values)
}

impl Interpreter for HybridInterpreter {
    fn kind(&self) -> InterpreterKind {
        InterpreterKind::Hybrid
    }

    fn interpret(&self, question: &str, ctx: &SchemaContext) -> Vec<Interpretation> {
        let mut entity = self.entity.interpret(question, ctx);
        let mut neural = self
            .neural
            .as_ref()
            .map(|n| n.interpret(question, ctx))
            .unwrap_or_default();

        // HMM informativeness: fraction of tokens tagged non-skip; a
        // question the tagger finds informative but the entity linker
        // produced nothing for is a paraphrase-gap case → lean neural.
        if let Some(hmm) = &self.hmm {
            let tokens = tokenize(question);
            let norms: Vec<&str> = tokens.iter().map(|t| t.norm.as_str()).collect();
            let (path, _) = hmm.viterbi(&norms);
            let informative =
                path.iter().filter(|&&s| s != TAG_SKIP).count() as f64 / path.len().max(1) as f64;
            let conf = hmm.path_confidence(&norms, &path);
            for i in &mut neural {
                i.confidence = (i.confidence * (0.8 + 0.4 * informative * (0.5 + conf))).min(1.0);
            }
        }

        // Agreement boost: identical SQL from both families.
        for e in &mut entity {
            if neural.iter().any(|n| n.sql == e.sql) {
                e.confidence = (e.confidence + 0.1).min(1.0);
                e.explanation.push("neural model agrees".to_string());
            }
        }

        // Cascade: confident entity leads; otherwise neural fills in.
        // Complexity routing: when the entity reading needs joins,
        // grouping, or nesting, it is outside the neural sketch's
        // reach entirely — a single-table neural reading cannot be
        // right, so the entity keeps the lead regardless of
        // confidence (§4.3's "filtering mechanism").
        let neural_top = neural.first().map(|n| n.confidence).unwrap_or(0.0);
        let entity_leads = entity
            .first()
            .map(|e| {
                e.confidence >= ENTITY_LEAD
                    || e.confidence >= neural_top
                    || !e.sql.joins.is_empty()
                    || e.sql.has_subquery()
                    || !e.sql.group_by.is_empty()
                    || !e.sql.order_by.is_empty()
            })
            .unwrap_or(false);
        let mut pool: Vec<Interpretation> = Vec::new();
        // The cascade is decisive: followers are capped strictly below
        // the leader's top confidence so ranking cannot re-promote them.
        let cap = |leader_top: f64| (leader_top - 0.01).max(0.0);
        if entity_leads {
            let top = entity.first().map(|e| e.confidence).unwrap_or(0.0);
            pool.extend(entity);
            pool.extend(neural.into_iter().map(|mut n| {
                n.confidence = (n.confidence * 0.9).min(cap(top));
                n
            }));
        } else {
            let top = neural.first().map(|n| n.confidence).unwrap_or(0.0);
            pool.extend(neural);
            pool.extend(entity.into_iter().map(|mut e| {
                e.confidence = (e.confidence * 0.9).min(cap(top));
                e
            }));
        }
        let mut out = Vec::with_capacity(pool.len());
        let mut seen = std::collections::HashSet::new();
        for mut i in pool {
            let key = i.sql.to_string();
            if seen.insert(key) {
                i.source = InterpreterKind::Hybrid;
                out.push(i);
            }
        }
        rank(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, Database, TableSchema, Value};
    use nlidb_sqlir::parse_query;

    fn ctx() -> SchemaContext {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("products")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("category", ColumnType::Text)
                .column("price", ColumnType::Float)
                .primary_key("id"),
        )
        .unwrap();
        for (id, n, c, p) in [(1, "Anvil", "tools", 10.0), (2, "Piano", "music", 500.0)] {
            db.insert(
                "products",
                vec![
                    Value::Int(id),
                    Value::from(n),
                    Value::from(c),
                    Value::Float(p),
                ],
            )
            .unwrap();
        }
        SchemaContext::build(&db)
    }

    fn training() -> Vec<TrainingExample> {
        [
            ("show all products", "SELECT * FROM products"),
            ("how many products", "SELECT COUNT(*) FROM products"),
            ("count the products", "SELECT COUNT(*) FROM products"),
            (
                "products in tools",
                "SELECT * FROM products WHERE category = 'tools'",
            ),
            (
                "average price of products",
                "SELECT AVG(price) FROM products",
            ),
        ]
        .iter()
        .map(|(q, s)| TrainingExample {
            question: q.to_string(),
            sql: parse_query(s).unwrap(),
        })
        .collect()
    }

    #[test]
    fn candidate_sets_are_retagged_hybrid_with_contiguous_ranks() {
        let ctx = ctx();
        let mut h = HybridInterpreter::new();
        h.train(&training(), &ctx, 7);
        let set = crate::candidates::gather(&h, "products in tools", &ctx, 5);
        assert_eq!(set.family, InterpreterKind::Hybrid);
        assert!(!set.is_empty());
        for (i, c) in set.candidates.iter().enumerate() {
            assert_eq!(c.rank, i, "ranks mirror the merged pool order");
            assert_eq!(c.interpretation.source, InterpreterKind::Hybrid);
        }
        // The merged pool grounds the value mention like its entity
        // parent would.
        assert!(
            set.top()
                .unwrap()
                .provenance
                .iter()
                .any(|g| g.target == "value:products.category=tools"),
            "{:?}",
            set.top().unwrap().provenance
        );
    }

    #[test]
    fn entity_only_when_untrained() {
        let ctx = ctx();
        let h = HybridInterpreter::new();
        assert!(!h.has_neural());
        let i = h.best("products in tools", &ctx).unwrap();
        assert_eq!(i.source, InterpreterKind::Hybrid);
        assert_eq!(
            i.sql.to_string(),
            "SELECT * FROM products WHERE category = 'tools'"
        );
    }

    #[test]
    fn trained_hybrid_covers_entity_gap() {
        let ctx = ctx();
        let mut h = HybridInterpreter::new();
        h.train(&training(), &ctx, 11);
        assert!(h.has_neural());
        // "how many products" — both families can answer; merged pool
        // must contain the COUNT reading exactly once.
        let out = h.interpret("how many products", &ctx);
        let count_readings: Vec<_> = out
            .iter()
            .filter(|i| i.sql.to_string() == "SELECT COUNT(*) FROM products")
            .collect();
        assert_eq!(count_readings.len(), 1, "dedup failed: {out:?}");
    }

    #[test]
    fn agreement_boosts_confidence() {
        let ctx = ctx();
        let mut h = HybridInterpreter::new();
        h.train(&training(), &ctx, 11);
        let hybrid_conf = h
            .interpret("products in tools", &ctx)
            .into_iter()
            .next()
            .unwrap()
            .confidence;
        let entity_conf = EntityInterpreter::new()
            .interpret("products in tools", &ctx)
            .into_iter()
            .next()
            .unwrap()
            .confidence;
        assert!(
            hybrid_conf >= entity_conf,
            "agreement should not lower confidence ({hybrid_conf} vs {entity_conf})"
        );
    }

    #[test]
    fn all_outputs_tagged_hybrid() {
        let ctx = ctx();
        let mut h = HybridInterpreter::new();
        h.train(&training(), &ctx, 11);
        for i in h.interpret("average price of products", &ctx) {
            assert_eq!(i.source, InterpreterKind::Hybrid);
        }
    }

    #[test]
    fn sql_vocabulary_extraction() {
        let q =
            parse_query("SELECT name FROM products WHERE category = 'hand tools' AND price > 5")
                .unwrap();
        let (schema, values) = sql_vocabulary(&q);
        assert!(schema.contains(&porter_stem("products")));
        assert!(schema.contains(&porter_stem("category")));
        assert!(values.contains(&"hand".to_string()));
        assert!(values.contains(&"tools".to_string()));
    }
}
