//! Property tests for the soak load shapes: over arbitrary seeds and
//! shape parameters, the generators must be seed-deterministic and
//! shape-correct — zipfian skew actually concentrates mass by rank,
//! flash-crowd burst windows are exact to the request, and the
//! per-request invariants (standalone, no deadline) hold everywhere.

use proptest::prelude::*;

use nlidb_benchdata::{flash_crowd_stream, zipfian_stream, RequestSpec};

fn toy_pool(size: usize) -> Vec<String> {
    (0..size).map(|i| format!("q{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipfian_is_seed_deterministic(
        seed in any::<u64>(),
        pool_size in 1usize..24,
        n in 0usize..300,
        exponent_tenths in 0u32..25,
    ) {
        let exponent = exponent_tenths as f64 / 10.0;
        let pool = toy_pool(pool_size);
        let a: Vec<RequestSpec> = zipfian_stream(pool.clone(), seed, n, exponent).collect();
        let b: Vec<RequestSpec> = zipfian_stream(pool.clone(), seed, n, exponent).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        for r in &a {
            prop_assert!(r.session.is_none() && r.deadline.is_none());
            prop_assert!(pool.contains(&r.question));
        }
    }

    #[test]
    fn zipfian_skew_concentrates_on_the_head(
        seed in any::<u64>(),
        pool_size in 4usize..16,
    ) {
        // At exponent ≥ 1.5 the rank-0 weight is ≥ pool^1.5 times the
        // tail weight; over 4096 draws the head must beat the last
        // rank by a wide margin for any seed, and the head count must
        // itself grow when the exponent does.
        let pool = toy_pool(pool_size);
        let tally = |exponent: f64| {
            let mut counts = vec![0usize; pool_size];
            for r in zipfian_stream(pool.clone(), seed, 4096, exponent) {
                let i = pool.iter().position(|q| *q == r.question).unwrap();
                counts[i] += 1;
            }
            counts
        };
        let skewed = tally(1.5);
        prop_assert!(
            skewed[0] > skewed[pool_size - 1].saturating_mul(4),
            "head {} vs tail {}", skewed[0], skewed[pool_size - 1]
        );
        let uniform = tally(0.0);
        prop_assert!(
            skewed[0] > uniform[0] + uniform[0] / 2,
            "exponent must steepen the head: skewed {} vs uniform {}",
            skewed[0], uniform[0]
        );
    }

    #[test]
    fn flash_crowd_windows_are_exact_for_any_shape(
        seed in any::<u64>(),
        pool_size in 2usize..12,
        period in 2usize..60,
        n in 0usize..400,
    ) {
        let burst_len = 1 + seed as usize % (period - 1);
        let pool = toy_pool(pool_size);
        let stream: Vec<RequestSpec> =
            flash_crowd_stream(pool.clone(), seed, n, period, burst_len).collect();
        prop_assert_eq!(stream.len(), n);
        for (i, r) in stream.iter().enumerate() {
            // The crowd question appears iff inside the burst window —
            // the baseline never draws pool[0].
            prop_assert_eq!(r.question == pool[0], i % period < burst_len, "at {}", i);
        }
        let again: Vec<RequestSpec> =
            flash_crowd_stream(pool, seed, n, period, burst_len).collect();
        prop_assert_eq!(stream, again);
    }
}
