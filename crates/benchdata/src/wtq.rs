//! WikiTableQuestions-like examples: question answering over a single
//! table where the target is the *answer denotation* (cell values),
//! not a SQL string.
//!
//! §6: "Given the question and the table, the task is to answer the
//! question based on the table." Our examples carry the gold SQL too
//! (we generated it), but evaluation compares answers — the laxest and
//! most system-agnostic metric, which is exactly why WTQ could host
//! heterogeneous systems.

use nlidb_engine::{execute, Database, Value};

use crate::slots::SlotSet;
use crate::templates::wikisql_like;

/// One WTQ-like example.
#[derive(Debug, Clone)]
pub struct WtqExample {
    /// Stable identifier.
    pub id: String,
    /// The question.
    pub question: String,
    /// The table the question is about.
    pub table: String,
    /// The gold answer: the first column of the gold query's result
    /// (WTQ answers are value lists).
    pub answer: Vec<Value>,
    /// The SQL that produced the answer (not part of the WTQ task
    /// definition; kept for analysis).
    pub gold_sql: nlidb_sqlir::Query,
    /// Words that must survive paraphrasing verbatim.
    pub protected: Vec<String>,
}

/// Does a predicted result denote the gold answer? Compares the first
/// column as an unordered bag of comparison keys.
pub fn answer_match(answer: &[Value], predicted: &nlidb_engine::ResultSet) -> bool {
    if predicted.rows.len() != answer.len() {
        return false;
    }
    let mut want: Vec<String> = answer.iter().map(Value::group_key).collect();
    let mut got: Vec<String> = predicted
        .rows
        .iter()
        .map(|r| r.first().map(Value::group_key).unwrap_or_default())
        .collect();
    want.sort_unstable();
    got.sort_unstable();
    want == got
}

/// Generate `n` WTQ-like examples over one domain. Questions whose
/// gold answer is empty are skipped (WTQ answers are non-empty).
pub fn wtq_like(db: &Database, slots: &SlotSet, seed: u64, n: usize) -> Vec<WtqExample> {
    let mut out = Vec::with_capacity(n);
    let mut serial = 0usize;
    // Over-generate and keep answerable ones.
    for pair in wikisql_like(slots, seed, n * 2) {
        if out.len() >= n {
            break;
        }
        let Ok(rs) = execute(db, &pair.sql) else {
            continue;
        };
        if rs.rows.is_empty() {
            continue;
        }
        let answer: Vec<Value> = rs
            .rows
            .iter()
            .map(|r| r.first().cloned().unwrap_or(Value::Null))
            .collect();
        if answer.iter().all(Value::is_null) {
            continue;
        }
        let table = match &pair.sql.from {
            Some(nlidb_sqlir::ast::TableSource::Table { name, .. }) => name.clone(),
            _ => continue,
        };
        serial += 1;
        out.push(WtqExample {
            id: format!("{}/wtq/{serial}", slots.domain),
            question: pair.question,
            table,
            answer,
            gold_sql: pair.sql,
            protected: pair.protected,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::retail_database;
    use crate::slots::derive_slots;

    #[test]
    fn generates_answerable_examples() {
        let db = retail_database(3);
        let slots = derive_slots(&db);
        let examples = wtq_like(&db, &slots, 9, 40);
        assert!(examples.len() >= 30, "got {}", examples.len());
        for ex in &examples {
            assert!(!ex.answer.is_empty(), "{}", ex.id);
            assert!(!ex.table.is_empty());
            // The gold SQL reproduces the recorded answer.
            let rs = execute(&db, &ex.gold_sql).unwrap();
            assert!(answer_match(&ex.answer, &rs), "{}", ex.id);
        }
    }

    #[test]
    fn answer_match_is_order_insensitive() {
        let predicted = nlidb_engine::ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert!(answer_match(&[Value::Int(1), Value::Int(2)], &predicted));
        assert!(!answer_match(&[Value::Int(1)], &predicted));
        assert!(!answer_match(&[Value::Int(1), Value::Int(3)], &predicted));
    }

    #[test]
    fn numeric_answers_unify_int_float() {
        let predicted = nlidb_engine::ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(2.0)]],
        };
        assert!(answer_match(&[Value::Int(2)], &predicted));
    }

    #[test]
    fn deterministic_under_seed() {
        let db = retail_database(3);
        let slots = derive_slots(&db);
        let a = wtq_like(&db, &slots, 9, 20);
        let b = wtq_like(&db, &slots, 9, 20);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.answer, y.answer);
        }
    }
}
