#![warn(missing_docs)]

//! # nlidb-benchdata — synthetic NLIDB benchmarks
//!
//! The survey's evaluation landscape (§6) is built on four public
//! datasets — WikiSQL, WikiTableQuestions, SParC, CoSQL — none of
//! which is redistributable inside this offline reproduction. This
//! crate generates seeded synthetic counterparts with the same
//! *shape*:
//!
//! * [`schemas`] — six multi-table domain databases (retail, HR,
//!   academic, flights, library, clinic) with seeded data,
//! * [`slots`] — semantic template slots derived automatically from
//!   each domain's ontology (dimension/fact concepts, measures,
//!   categoricals, temporal columns, live data values),
//! * [`templates`] — question/SQL pair generation across the survey's
//!   four complexity rungs,
//! * [`mod@paraphrase`] — a controllable paraphrase engine (synonyms,
//!   colloquialisms, reordering, typos) with intensity levels 0–3,
//! * [`sessions`] — SParC-like coherent question sequences and
//!   CoSQL-like dialogues with per-turn gold SQL,
//! * [`requests`] — interleaved serving streams (hot-question skew +
//!   in-order conversation turns) for the `nlidb-serve` runtime,
//! * [`soak`] — lazy open-loop load shapes at 10⁵–10⁶-request scale
//!   (zipfian popularity, flash crowds, long CoSQL-shaped sessions,
//!   tenant-skewed mixes) — iterators, never materialized `Vec`s,
//! * [`faults`] — seeded fault schedules (transient / fatal / worker
//!   panic) for rehearsing serving-path failure deterministically,
//! * [`stats`] — dataset statistics harness mirroring the counts the
//!   paper reports for the real benchmarks.
//!
//! Everything is deterministic under a `u64` seed.

pub mod faults;
pub mod paraphrase;
pub mod requests;
pub mod schemas;
pub mod sessions;
pub mod slots;
pub mod soak;
pub mod stats;
pub mod templates;
pub mod wtq;

pub use faults::{FaultKind, FaultPlan, FaultRates};
pub use paraphrase::paraphrase;
pub use requests::{
    interleave_streams, request_stream, session_turn_ids, sessions_with_min_turns, RequestSpec,
};
pub use schemas::{
    academic_database, all_domains, clinic_database, domain_database, flights_database,
    hr_database, library_database, retail_database, DOMAIN_NAMES,
};
pub use sessions::{cosql_like, sparc_like, SessionExample, SessionKind, TurnExample};
pub use slots::{derive_slots, SlotSet};
pub use soak::{
    flash_crowd_stream, long_session_stream, question_pool, tenant_skew_stream, zipfian_stream,
};
pub use stats::{dataset_stats, paper_reference, DatasetStats};
pub use templates::{spider_like, wikisql_like, QaPair};
pub use wtq::{answer_match, wtq_like, WtqExample};
