//! Multi-turn session generation: SParC-like coherent question
//! sequences and CoSQL-like dialogues with per-turn gold SQL and
//! dialogue-act labels.
//!
//! Three session shapes target the three dialogue-management regimes:
//!
//! * `Scripted` — query → narrow → aggregate, strictly forward (a
//!   finite-state script can complete it);
//! * `SlotRefill` — includes a slot-value swap ("what about X"), which
//!   needs frame-based management;
//! * `UserInitiative` — includes filter removal / regrouping, which
//!   only agent-based management accommodates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nlidb_sqlir::ast::{BinOp, Expr};
use nlidb_sqlir::{Query, QueryBuilder};

use crate::slots::SlotSet;

/// Which dialogue regime the session is designed to exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionKind {
    /// Forward-only script (FSM-completable).
    Scripted,
    /// Includes slot refills (frame-completable).
    SlotRefill,
    /// Includes user-initiative moves (agent-only).
    UserInitiative,
}

impl SessionKind {
    /// Label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SessionKind::Scripted => "scripted",
            SessionKind::SlotRefill => "slot-refill",
            SessionKind::UserInitiative => "user-initiative",
        }
    }

    /// All kinds.
    pub fn all() -> [SessionKind; 3] {
        [
            SessionKind::Scripted,
            SessionKind::SlotRefill,
            SessionKind::UserInitiative,
        ]
    }
}

/// One turn: utterance, the gold SQL *after* this turn, and the gold
/// dialogue-act label.
#[derive(Debug, Clone)]
pub struct TurnExample {
    /// What the user says.
    pub utterance: String,
    /// Gold cumulative SQL after the turn.
    pub gold: Query,
    /// Gold dialogue act.
    pub act: &'static str,
}

/// One generated session.
#[derive(Debug, Clone)]
pub struct SessionExample {
    /// Session shape.
    pub kind: SessionKind,
    /// Domain name.
    pub domain: String,
    /// The turns in order.
    pub turns: Vec<TurnExample>,
}

/// Pick a concept with a categorical (with ≥2 values) AND a measure —
/// sessions need both narrowing and aggregation room.
fn session_concept(slots: &SlotSet, rng: &mut StdRng) -> Option<usize> {
    let candidates: Vec<usize> = slots
        .with_both()
        .into_iter()
        .filter(|&i| {
            slots.concepts[i]
                .categoricals
                .iter()
                .any(|(_, _, v)| v.len() >= 2)
        })
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

fn build_session(slots: &SlotSet, kind: SessionKind, rng: &mut StdRng) -> Option<SessionExample> {
    let ci = session_concept(slots, rng)?;
    let c = &slots.concepts[ci];
    let cat = c.categoricals.iter().find(|(_, _, v)| v.len() >= 2)?;
    let (cat_label, cat_col, values) = (&cat.0, &cat.1, &cat.2);
    let v1 = values[rng.gen_range(0..values.len())].clone();
    let v2 = values
        .iter()
        .find(|v| **v != v1)
        .cloned()
        .unwrap_or_else(|| v1.clone());
    let m = &c.measures[rng.gen_range(0..c.measures.len())];
    let (m_label, m_col, m_values) = (&m.0, &m.1, &m.2);
    let threshold = if m_values.is_empty() {
        10
    } else {
        m_values[m_values.len() / 2].round() as i64
    };

    let base_q = QueryBuilder::from_table(&c.table)
        .and_where(Expr::col(cat_col.clone()).eq(Expr::str(v1.clone())))
        .build();
    let mut turns = vec![TurnExample {
        utterance: format!("show {} in {v1}", c.plural),
        gold: base_q.clone(),
        act: "new_query",
    }];

    match kind {
        SessionKind::Scripted => {
            let narrowed = QueryBuilder::from_table(&c.table)
                .and_where(Expr::col(cat_col.clone()).eq(Expr::str(v1.clone())))
                .and_where(Expr::col(m_col.clone()).binary(BinOp::Gt, Expr::int(threshold)))
                .build();
            turns.push(TurnExample {
                utterance: format!("only those with {m_label} over {threshold}"),
                gold: narrowed.clone(),
                act: "add_filter",
            });
            let mut counted = narrowed;
            counted.select = vec![nlidb_sqlir::ast::SelectItem::expr(Expr::count_star())];
            turns.push(TurnExample {
                utterance: "how many of those are there".to_string(),
                gold: counted,
                act: "set_aggregation",
            });
        }
        SessionKind::SlotRefill => {
            let swapped = QueryBuilder::from_table(&c.table)
                .and_where(Expr::col(cat_col.clone()).eq(Expr::str(v2.clone())))
                .build();
            turns.push(TurnExample {
                utterance: format!("what about {v2}"),
                gold: swapped.clone(),
                act: "replace_value",
            });
            let mut counted = swapped;
            counted.select = vec![nlidb_sqlir::ast::SelectItem::expr(Expr::count_star())];
            turns.push(TurnExample {
                utterance: "how many of those are there".to_string(),
                gold: counted,
                act: "set_aggregation",
            });
        }
        SessionKind::UserInitiative => {
            let widened = QueryBuilder::from_table(&c.table).build();
            turns.push(TurnExample {
                utterance: "remove the filters please".to_string(),
                gold: widened,
                act: "remove_filters",
            });
            let grouped = QueryBuilder::from_table(&c.table)
                .select_col(cat_col.clone())
                .select_expr(Expr::count_star(), None)
                .group_by(Expr::col(cat_col.clone()))
                .build();
            turns.push(TurnExample {
                utterance: format!("break that down by {cat_label}"),
                gold: grouped,
                act: "set_group",
            });
        }
    }
    Some(SessionExample {
        kind,
        domain: slots.domain.clone(),
        turns,
    })
}

/// Generate `n` SParC-like sessions, cycling the three shapes.
pub fn sparc_like(slots: &SlotSet, seed: u64, n: usize) -> Vec<SessionExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = SessionKind::all();
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while out.len() < n && i < n * 6 {
        if let Some(s) = build_session(slots, kinds[i % 3], &mut rng) {
            out.push(s);
        }
        i += 1;
    }
    out
}

/// Generate CoSQL-like dialogues: the SParC-like sessions plus a
/// trailing "thank you"-class turn whose act is unknown (dialogue
/// systems must not misread chit-chat as a query — CoSQL's dialogue
/// acts include such non-query turns).
pub fn cosql_like(slots: &SlotSet, seed: u64, n: usize) -> Vec<SessionExample> {
    let mut sessions = sparc_like(slots, seed, n);
    for s in &mut sessions {
        let last_gold = s.turns.last().map(|t| t.gold.clone());
        if let Some(gold) = last_gold {
            s.turns.push(TurnExample {
                utterance: "great, thanks a lot".to_string(),
                gold,
                act: "unknown",
            });
        }
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::{all_domains, retail_database};
    use crate::slots::derive_slots;
    use nlidb_engine::execute;

    #[test]
    fn sessions_generate_all_kinds() {
        let slots = derive_slots(&retail_database(3));
        let sessions = sparc_like(&slots, 7, 9);
        assert_eq!(sessions.len(), 9);
        for kind in SessionKind::all() {
            assert!(sessions.iter().any(|s| s.kind == kind));
        }
    }

    #[test]
    fn per_turn_gold_executes() {
        for db in all_domains(5) {
            let slots = derive_slots(&db);
            for s in sparc_like(&slots, 11, 6) {
                for t in &s.turns {
                    assert!(
                        execute(&db, &t.gold).is_ok(),
                        "{}/{:?}: {}",
                        s.domain,
                        s.kind,
                        t.gold
                    );
                }
            }
        }
    }

    #[test]
    fn turn_structure_matches_kind() {
        let slots = derive_slots(&retail_database(3));
        for s in sparc_like(&slots, 13, 9) {
            assert_eq!(s.turns[0].act, "new_query");
            match s.kind {
                SessionKind::Scripted => {
                    assert_eq!(s.turns[1].act, "add_filter");
                    assert_eq!(s.turns[2].act, "set_aggregation");
                }
                SessionKind::SlotRefill => {
                    assert_eq!(s.turns[1].act, "replace_value");
                }
                SessionKind::UserInitiative => {
                    assert_eq!(s.turns[1].act, "remove_filters");
                    assert_eq!(s.turns[2].act, "set_group");
                }
            }
        }
    }

    #[test]
    fn cosql_adds_chitchat_turn() {
        let slots = derive_slots(&retail_database(3));
        let sessions = cosql_like(&slots, 17, 3);
        for s in sessions {
            assert_eq!(s.turns.last().unwrap().act, "unknown");
        }
    }

    #[test]
    fn deterministic() {
        let slots = derive_slots(&retail_database(3));
        let a = sparc_like(&slots, 19, 6);
        let b = sparc_like(&slots, 19, 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.turns.len(), y.turns.len());
            for (tx, ty) in x.turns.iter().zip(&y.turns) {
                assert_eq!(tx.utterance, ty.utterance);
            }
        }
    }
}
