//! Six seeded multi-table domain databases.
//!
//! Spider's headline property is *cross-domain* evaluation (200
//! databases, 138 domains); this module provides six structurally
//! distinct domains so the cross-domain experiments (E1, E3) can train
//! on some and evaluate on others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nlidb_engine::{ColumnType, Database, TableSchema, Value};

/// All generator domain names.
pub const DOMAIN_NAMES: [&str; 6] = ["retail", "hr", "academic", "flights", "library", "clinic"];

const FIRST_NAMES: [&str; 16] = [
    "Ada", "Bo", "Carol", "Dan", "Eve", "Fay", "Gus", "Hana", "Ivan", "Joan", "Kofi", "Lena",
    "Mira", "Noor", "Omar", "Pia",
];
const LAST_NAMES: [&str; 12] = [
    "Stone", "Rivera", "Chen", "Okafor", "Silva", "Novak", "Haddad", "Kim", "Moreau", "Patel",
    "Berg", "Ivanov",
];
const CITIES: [&str; 10] = [
    "Austin", "Boston", "Chicago", "Denver", "El Paso", "Fresno", "Geneva", "Houston", "Irvine",
    "Jakarta",
];
const SEGMENTS: [&str; 4] = ["consumer", "corporate", "home office", "public sector"];
const STATUSES: [&str; 3] = ["shipped", "pending", "returned"];
const CATEGORIES: [&str; 6] = [
    "electronics",
    "furniture",
    "grocery",
    "toys",
    "clothing",
    "sports",
];
const DIVISIONS: [&str; 3] = ["operations", "research", "sales"];
const TITLES: [&str; 5] = ["engineer", "analyst", "manager", "director", "clerk"];
const SUBJECTS: [&str; 5] = ["math", "history", "physics", "art", "biology"];
const MAJORS: [&str; 5] = ["computing", "economics", "literature", "chemistry", "music"];
const TERMS: [&str; 4] = ["spring", "summer", "fall", "winter"];
const AIRLINES: [&str; 5] = ["AeroMax", "BlueJet", "CloudAir", "DeltaWing", "EagleFly"];
const COUNTRIES: [&str; 6] = ["USA", "Brazil", "France", "Japan", "Kenya", "Norway"];
const GENRES: [&str; 5] = ["mystery", "fantasy", "history", "romance", "science"];
const NATIONALITIES: [&str; 5] = ["American", "Brazilian", "French", "Japanese", "Kenyan"];
const OUTCOMES: [&str; 3] = ["resolved", "referred", "follow-up"];
const SPECIALTIES: [&str; 5] = [
    "cardiology",
    "dermatology",
    "neurology",
    "pediatrics",
    "oncology",
];

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn person_name(rng: &mut StdRng) -> String {
    format!("{} {}", pick(rng, &FIRST_NAMES), pick(rng, &LAST_NAMES))
}

fn date(rng: &mut StdRng, y0: i32, y1: i32) -> String {
    let y = rng.gen_range(y0..=y1);
    let m = rng.gen_range(1..=12u32);
    let d = rng.gen_range(1..=28u32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
}

/// Build one domain database by name. Panics on unknown names (the
/// name set is a compile-time constant).
pub fn domain_database(name: &str, seed: u64) -> Database {
    match name {
        "retail" => retail_database(seed),
        "hr" => hr_database(seed),
        "academic" => academic_database(seed),
        "flights" => flights_database(seed),
        "library" => library_database(seed),
        "clinic" => clinic_database(seed),
        other => panic!("unknown domain: {other}"),
    }
}

/// All six domains under one seed.
pub fn all_domains(seed: u64) -> Vec<Database> {
    DOMAIN_NAMES
        .iter()
        .enumerate()
        .map(|(i, n)| domain_database(n, seed.wrapping_add(i as u64)))
        .collect()
}

/// Retail: customers ← orders → products.
pub fn retail_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("retail");
    db.create_table(
        TableSchema::new("customers")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("city", ColumnType::Text)
            .column("segment", ColumnType::Text)
            .column("signup_date", ColumnType::Date)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("products")
            .column("id", ColumnType::Int)
            .column("product_name", ColumnType::Text)
            .column("category", ColumnType::Text)
            .column("price", ColumnType::Float)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("orders")
            .column("id", ColumnType::Int)
            .column("customer_id", ColumnType::Int)
            .column("product_id", ColumnType::Int)
            .column("amount", ColumnType::Float)
            .column("status", ColumnType::Text)
            .column("order_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("customer_id", "customers", "id")
            .foreign_key("product_id", "products", "id"),
    )
    .unwrap();
    let n_cust = 24;
    let n_prod = 18;
    for i in 1..=n_cust {
        db.insert(
            "customers",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::from(pick(&mut rng, &CITIES)),
                Value::from(pick(&mut rng, &SEGMENTS)),
                Value::from(date(&mut rng, 2015, 2020)),
            ],
        )
        .unwrap();
    }
    for i in 1..=n_prod {
        db.insert(
            "products",
            vec![
                Value::Int(i),
                Value::from(format!("{} {}", pick(&mut rng, &CATEGORIES), i)),
                Value::from(pick(&mut rng, &CATEGORIES)),
                Value::Float(money(&mut rng, 3.0, 900.0)),
            ],
        )
        .unwrap();
    }
    for i in 1..=140 {
        db.insert(
            "orders",
            vec![
                Value::Int(i),
                Value::Int(rng.gen_range(1..=n_cust - 2)), // leave some customers order-less
                Value::Int(rng.gen_range(1..=n_prod)),
                Value::Float(money(&mut rng, 5.0, 2500.0)),
                Value::from(pick(&mut rng, &STATUSES)),
                Value::from(date(&mut rng, 2018, 2021)),
            ],
        )
        .unwrap();
    }
    db
}

/// HR: departments ← employees.
pub fn hr_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("hr");
    db.create_table(
        TableSchema::new("departments")
            .column("id", ColumnType::Int)
            .column("dept_name", ColumnType::Text)
            .column("division", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("employees")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("department_id", ColumnType::Int)
            .column("salary", ColumnType::Float)
            .column("role", ColumnType::Text)
            .column("hire_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("department_id", "departments", "id"),
    )
    .unwrap();
    let n_dept = 8;
    for i in 1..=n_dept {
        db.insert(
            "departments",
            vec![
                Value::Int(i),
                Value::from(format!("dept {i}")),
                Value::from(pick(&mut rng, &DIVISIONS)),
            ],
        )
        .unwrap();
    }
    for i in 1..=90 {
        db.insert(
            "employees",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::Int(rng.gen_range(1..=n_dept - 1)),
                Value::Float(money(&mut rng, 30_000.0, 190_000.0)),
                Value::from(pick(&mut rng, &TITLES)),
                Value::from(date(&mut rng, 2010, 2021)),
            ],
        )
        .unwrap();
    }
    db
}

/// Academic: students ← enrollments → courses.
pub fn academic_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("academic");
    db.create_table(
        TableSchema::new("students")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("major", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("courses")
            .column("id", ColumnType::Int)
            .column("course_name", ColumnType::Text)
            .column("subject", ColumnType::Text)
            .column("credits", ColumnType::Int)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("enrollments")
            .column("id", ColumnType::Int)
            .column("student_id", ColumnType::Int)
            .column("course_id", ColumnType::Int)
            .column("grade", ColumnType::Float)
            .column("term", ColumnType::Text)
            .column("enroll_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("student_id", "students", "id")
            .foreign_key("course_id", "courses", "id"),
    )
    .unwrap();
    let n_stud = 30;
    let n_course = 12;
    for i in 1..=n_stud {
        db.insert(
            "students",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::from(pick(&mut rng, &MAJORS)),
            ],
        )
        .unwrap();
    }
    for i in 1..=n_course {
        db.insert(
            "courses",
            vec![
                Value::Int(i),
                Value::from(format!("{} {}", pick(&mut rng, &SUBJECTS), 100 + i)),
                Value::from(pick(&mut rng, &SUBJECTS)),
                Value::Int(rng.gen_range(1..=5)),
            ],
        )
        .unwrap();
    }
    for i in 1..=120 {
        db.insert(
            "enrollments",
            vec![
                Value::Int(i),
                Value::Int(rng.gen_range(1..=n_stud - 3)),
                Value::Int(rng.gen_range(1..=n_course)),
                Value::Float((rng.gen_range(1.0..4.0f64) * 10.0).round() / 10.0),
                Value::from(pick(&mut rng, &TERMS)),
                Value::from(date(&mut rng, 2017, 2021)),
            ],
        )
        .unwrap();
    }
    db
}

/// Flights: airports ← flights.
pub fn flights_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("flights");
    db.create_table(
        TableSchema::new("airports")
            .column("id", ColumnType::Int)
            .column("airport_name", ColumnType::Text)
            .column("country", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("flights")
            .column("id", ColumnType::Int)
            .column("origin_id", ColumnType::Int)
            .column("airline", ColumnType::Text)
            .column("duration", ColumnType::Float)
            .column("flight_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("origin_id", "airports", "id"),
    )
    .unwrap();
    let n_apt = 10;
    for i in 1..=n_apt {
        db.insert(
            "airports",
            vec![
                Value::Int(i),
                Value::from(format!("{} International", pick(&mut rng, &CITIES))),
                Value::from(pick(&mut rng, &COUNTRIES)),
            ],
        )
        .unwrap();
    }
    for i in 1..=110 {
        db.insert(
            "flights",
            vec![
                Value::Int(i),
                Value::Int(rng.gen_range(1..=n_apt - 1)),
                Value::from(pick(&mut rng, &AIRLINES)),
                Value::Float((rng.gen_range(0.7..15.0f64) * 10.0).round() / 10.0),
                Value::from(date(&mut rng, 2019, 2021)),
            ],
        )
        .unwrap();
    }
    db
}

/// Library: authors ← books.
pub fn library_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("library");
    db.create_table(
        TableSchema::new("authors")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("nationality", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("books")
            .column("id", ColumnType::Int)
            .column("book_title", ColumnType::Text)
            .column("author_id", ColumnType::Int)
            .column("genre", ColumnType::Text)
            .column("pages", ColumnType::Int)
            .column("publish_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("author_id", "authors", "id"),
    )
    .unwrap();
    let n_auth = 14;
    for i in 1..=n_auth {
        db.insert(
            "authors",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::from(pick(&mut rng, &NATIONALITIES)),
            ],
        )
        .unwrap();
    }
    for i in 1..=80 {
        db.insert(
            "books",
            vec![
                Value::Int(i),
                Value::from(format!("{} tales {}", pick(&mut rng, &GENRES), i)),
                Value::Int(rng.gen_range(1..=n_auth - 2)),
                Value::from(pick(&mut rng, &GENRES)),
                Value::Int(rng.gen_range(60..900)),
                Value::from(date(&mut rng, 1990, 2020)),
            ],
        )
        .unwrap();
    }
    db
}

/// Clinic: patients/doctors ← visits.
pub fn clinic_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("clinic");
    db.create_table(
        TableSchema::new("doctors")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("specialty", ColumnType::Text)
            .column("city", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("patients")
            .column("id", ColumnType::Int)
            .column("patient_name", ColumnType::Text)
            .column("city", ColumnType::Text)
            .primary_key("id"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("visits")
            .column("id", ColumnType::Int)
            .column("patient_id", ColumnType::Int)
            .column("doctor_id", ColumnType::Int)
            .column("cost", ColumnType::Float)
            .column("outcome", ColumnType::Text)
            .column("visit_date", ColumnType::Date)
            .primary_key("id")
            .foreign_key("patient_id", "patients", "id")
            .foreign_key("doctor_id", "doctors", "id"),
    )
    .unwrap();
    let n_doc = 9;
    let n_pat = 26;
    for i in 1..=n_doc {
        db.insert(
            "doctors",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::from(pick(&mut rng, &SPECIALTIES)),
                Value::from(pick(&mut rng, &CITIES)),
            ],
        )
        .unwrap();
    }
    for i in 1..=n_pat {
        db.insert(
            "patients",
            vec![
                Value::Int(i),
                Value::from(person_name(&mut rng)),
                Value::from(pick(&mut rng, &CITIES)),
            ],
        )
        .unwrap();
    }
    for i in 1..=130 {
        db.insert(
            "visits",
            vec![
                Value::Int(i),
                Value::Int(rng.gen_range(1..=n_pat - 3)),
                Value::Int(rng.gen_range(1..=n_doc)),
                Value::Float(money(&mut rng, 40.0, 1200.0)),
                Value::from(pick(&mut rng, &OUTCOMES)),
                Value::from(date(&mut rng, 2018, 2021)),
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_build_and_are_seeded() {
        let a = all_domains(42);
        let b = all_domains(42);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.total_rows(), y.total_rows());
        }
        let c = all_domains(43);
        // Same structure, different data: row values must differ
        // somewhere even though counts match.
        let a_first = a[0].table("orders").unwrap().rows[0].clone();
        let c_first = c[0].table("orders").unwrap().rows[0].clone();
        assert_ne!(a_first, c_first);
    }

    #[test]
    fn every_domain_has_fk_edges() {
        for db in all_domains(1) {
            let fk_count: usize = db.tables().map(|t| t.schema.foreign_keys.len()).sum();
            assert!(fk_count >= 1, "{} lacks relationships", db.name);
        }
    }

    #[test]
    fn fact_tables_have_orphan_free_fks_and_some_orphan_dims() {
        // Retail leaves a couple of customers without orders (needed by
        // the nested "without" templates).
        let db = retail_database(7);
        let customers = db.table("customers").unwrap().len() as i64;
        let referenced: std::collections::HashSet<i64> = db
            .table("orders")
            .unwrap()
            .rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            (referenced.len() as i64) < customers,
            "some customers must have no orders"
        );
        // And all FKs must point at existing customers.
        assert!(referenced.iter().all(|i| *i >= 1 && *i <= customers));
    }

    #[test]
    fn dates_are_iso() {
        let db = retail_database(3);
        for row in &db.table("orders").unwrap().rows {
            if let Value::Str(d) = &row[5] {
                assert_eq!(d.len(), 10);
                assert_eq!(&d[4..5], "-");
            } else {
                panic!("order_date must be a string date");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown domain")]
    fn unknown_domain_panics() {
        let _ = domain_database("casino", 1);
    }
}
