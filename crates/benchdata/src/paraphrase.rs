//! Controlled paraphrase generation.
//!
//! The survey's sharpest empirical claim (§4.1 vs §4.2) is about
//! *linguistic variation*: entity-based systems are "highly sensitive
//! to variations and paraphrasing of the user query", while learned
//! systems are "robust to NL variations" (given training exposure).
//! Experiment E2 sweeps this engine's intensity levels:
//!
//! * **0** — canonical template text, untouched;
//! * **1** — lexical synonym substitution (within the business
//!   lexicon's rings: "customers" → "clients");
//! * **2** — + colloquial rephrasings that leave the lexicon's
//!   vocabulary entirely ("how many" → "give me the tally of");
//! * **3** — + filler prefixes and a character-level typo.
//!
//! Words in the `protected` list (literal values, numbers) are never
//! altered — the question's denotation must stay fixed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nlidb_nlp::{tokenize, Lexicon, TokenKind};

/// Colloquial phrase substitutions (applied at level ≥ 2). The
/// replacements deliberately avoid lexicon vocabulary so that
/// entity-based interpreters cannot recover them by synonym expansion.
const COLLOQUIAL: &[(&str, &str)] = &[
    ("how many", "give me the tally of"),
    ("number of", "tally of"),
    ("total", "combined"),
    ("average", "typical"),
    ("show all", "pull up all"),
    ("show the", "pull up the"),
    ("show", "pull up"),
    ("list the", "run through the"),
    ("more than", "exceeding"),
    ("greater than", "exceeding"),
    ("less than", "staying under"),
    ("without", "that never got any"),
    ("top", "leading"),
    ("by", "broken out across"),
];

/// Filler prefixes (level ≥ 3).
const FILLERS: &[&str] = &["hey,", "um,", "so,", "quick question:", "please,"];

/// Paraphrase `question` at the given intensity `level` (0–3), never
/// touching `protected` words. Deterministic under `seed`.
pub fn paraphrase(
    question: &str,
    protected: &[String],
    level: u8,
    lexicon: &Lexicon,
    seed: u64,
) -> String {
    if level == 0 {
        return question.to_string();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let is_protected = |w: &str| protected.iter().any(|p| p.eq_ignore_ascii_case(w));

    // Level 1: synonym substitution on unprotected content words.
    let mut words: Vec<String> = Vec::new();
    for t in tokenize(question) {
        if t.kind == TokenKind::Word && !is_protected(&t.norm) && rng.gen_bool(0.45) {
            let syns = lexicon.synonyms_of(&t.norm);
            if !syns.is_empty() {
                let pick = syns[rng.gen_range(0..syns.len())].to_string();
                // Preserve plural-ish surface: if the original ended in
                // 's' and the synonym doesn't, pluralize it.
                let out = if t.norm.ends_with('s') && !pick.ends_with('s') {
                    format!("{pick}s")
                } else {
                    pick
                };
                words.push(out);
                continue;
            }
        }
        words.push(t.text.clone());
    }
    let mut text = words.join(" ");

    // Level 2: colloquial phrase substitution.
    if level >= 2 {
        for (from, to) in COLLOQUIAL {
            if rng.gen_bool(0.6) && text.contains(from) {
                // Never rewrite across a protected word.
                if !protected.iter().any(|p| from.contains(p.as_str())) {
                    text = text.replacen(from, to, 1);
                }
            }
        }
    }

    // Level 3: filler prefix + one typo in a long unprotected word.
    if level >= 3 {
        let filler = FILLERS[rng.gen_range(0..FILLERS.len())];
        text = format!("{filler} {text}");
        let toks: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        let candidates: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, w)| w.len() >= 5 && !is_protected(w) && w.chars().all(char::is_alphabetic))
            .map(|(i, _)| i)
            .collect();
        if !candidates.is_empty() {
            let wi = candidates[rng.gen_range(0..candidates.len())];
            let mut chars: Vec<char> = toks[wi].chars().collect();
            let p = rng.gen_range(1..chars.len() - 1);
            chars.swap(p, p - 1);
            let mut toks = toks;
            toks[wi] = chars.into_iter().collect();
            text = toks.join(" ");
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicon {
        Lexicon::business_default()
    }

    #[test]
    fn level_zero_is_identity() {
        let q = "show customers in Austin";
        assert_eq!(paraphrase(q, &["Austin".into()], 0, &lex(), 1), q);
    }

    #[test]
    fn protected_words_survive_all_levels() {
        let q = "show customers in Austin with amount over 500";
        for level in 0..=3 {
            for seed in 0..10 {
                let p = paraphrase(q, &["Austin".into(), "500".into()], level, &lex(), seed);
                assert!(p.contains("Austin"), "level {level} seed {seed}: {p}");
                assert!(p.contains("500"), "level {level} seed {seed}: {p}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let q = "total revenue by region";
        assert_eq!(
            paraphrase(q, &[], 3, &lex(), 9),
            paraphrase(q, &[], 3, &lex(), 9)
        );
    }

    #[test]
    fn higher_levels_change_more() {
        let q = "how many customers are there in Austin";
        let protected = vec!["Austin".to_string()];
        // Over several seeds, level 3 must alter the text at least as
        // often as level 1 (and both must alter it sometimes).
        let changed = |level: u8| {
            (0..20)
                .filter(|s| paraphrase(q, &protected, level, &lex(), *s) != q)
                .count()
        };
        let c1 = changed(1);
        let c3 = changed(3);
        assert!(c1 > 0, "level 1 never changed anything");
        assert_eq!(c3, 20, "level 3 always changes (filler prefix)");
        assert!(c3 >= c1);
    }

    #[test]
    fn synonyms_come_from_lexicon() {
        // With seed sweep, "customers" should sometimes become a ring
        // mate ("clients"/"buyers"/…).
        let q = "show customers";
        let found = (0..40).any(|s| {
            let p = paraphrase(q, &[], 1, &lex(), s);
            p.contains("client")
                || p.contains("buyer")
                || p.contains("purchaser")
                || p.contains("account")
        });
        assert!(found, "no synonym substitution over 40 seeds");
    }

    #[test]
    fn colloquial_rewrites_leave_lexicon() {
        let q = "how many customers are there";
        let found = (0..40).any(|s| paraphrase(q, &[], 2, &lex(), s).contains("tally"));
        assert!(found, "colloquial substitution never fired");
    }
}
