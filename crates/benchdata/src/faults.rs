//! Seeded fault schedules for the serving runtime.
//!
//! The survey's §4 comparison is ultimately about *failure shape* —
//! entity-based systems are brittle, learned systems degrade on
//! complex inputs — so a production serving layer needs a way to
//! rehearse failure deterministically. A [`FaultPlan`] is a seeded
//! map from request id to an injected [`FaultKind`]; the `nlidb-serve`
//! worker consults it (through its request hook) before touching the
//! pipeline, so a given seed produces the same faults, the same
//! retries, and the same degraded answers on every run.
//!
//! The plan models three production failure archetypes:
//!
//! * **Transient** — the preferred interpreter's backend hiccups for a
//!   bounded number of attempts (a timeout, a momentary overload) and
//!   then recovers; retry-with-backoff absorbs it.
//! * **Fatal** — the top `depth` rungs of the §4 family ladder are
//!   down for this request; the server degrades to the first healthy
//!   family below them.
//! * **WorkerPanic** — the worker thread itself dies mid-request; the
//!   server must contain the crash and surface the loss explicitly.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected failure, chosen per request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The preferred interpreter fails the first `failures` attempts
    /// at this request, then succeeds — a recoverable backend hiccup.
    Transient {
        /// How many consecutive attempts fail before recovery (≥ 1).
        failures: u32,
    },
    /// The top `depth` rungs of the degradation ladder fail for this
    /// request (`depth` = 1 knocks out only the preferred family).
    Fatal {
        /// Ladder rungs knocked out, starting from the preferred (≥ 1).
        depth: u32,
    },
    /// The worker thread panics while holding this request.
    WorkerPanic,
}

/// Approximate per-request fault probabilities for seeded generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a request draws a [`FaultKind::Transient`] fault.
    pub transient: f64,
    /// Probability a request draws a [`FaultKind::Fatal`] fault
    /// (evaluated only if the transient draw missed).
    pub fatal: f64,
    /// Upper bound on transient `failures` (drawn in `1..=max`).
    pub max_transient_failures: u32,
    /// Upper bound on fatal `depth` (drawn in `1..=max`).
    pub max_fatal_depth: u32,
}

impl Default for FaultRates {
    fn default() -> FaultRates {
        FaultRates {
            transient: 0.1,
            fatal: 0.05,
            max_transient_failures: 2,
            max_fatal_depth: 1,
        }
    }
}

/// A deterministic schedule of injected faults, keyed by request id.
///
/// Worker panics are never drawn randomly — a dead worker reshapes
/// every later routing decision, so panic sites are placed explicitly
/// with [`FaultPlan::with`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
    /// When set, lookups use `id % period` — so a plan generated for
    /// one pass of `n` requests repeats on every warm replay.
    period: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no request ever faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Draw a plan for request ids `0..n` at the given rates. Same
    /// seed, same plan — byte for byte.
    pub fn seeded(seed: u64, n: u64, rates: &FaultRates) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&rates.transient) && (0.0..=1.0).contains(&rates.fatal),
            "fault rates out of [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_fa17_fa17_fa17);
        let mut faults = BTreeMap::new();
        for id in 0..n {
            if rates.transient > 0.0 && rng.gen_bool(rates.transient) {
                let failures = rng.gen_range(1..=rates.max_transient_failures.max(1));
                faults.insert(id, FaultKind::Transient { failures });
            } else if rates.fatal > 0.0 && rng.gen_bool(rates.fatal) {
                let depth = rng.gen_range(1..=rates.max_fatal_depth.max(1));
                faults.insert(id, FaultKind::Fatal { depth });
            }
        }
        FaultPlan {
            faults,
            period: None,
        }
    }

    /// Pin a fault on one request id (builder style; overwrites any
    /// drawn fault for that id).
    pub fn with(mut self, id: u64, kind: FaultKind) -> FaultPlan {
        self.faults.insert(id, kind);
        self
    }

    /// Make the plan repeat every `period` requests (`id % period`),
    /// so warm replays of the same stream re-experience the same
    /// faults. A period of 0 is treated as "no period".
    pub fn periodic(mut self, period: u64) -> FaultPlan {
        self.period = (period > 0).then_some(period);
        self
    }

    /// The fault scheduled for `id`, if any.
    pub fn fault_for(&self, id: u64) -> Option<FaultKind> {
        let key = match self.period {
            Some(p) => id % p,
            None => id,
        };
        self.faults.get(&key).copied()
    }

    /// Number of faulted request ids in the schedule.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faulted ids in ascending order (diagnostic helper).
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.faults.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let rates = FaultRates::default();
        let a = FaultPlan::seeded(42, 200, &rates);
        let b = FaultPlan::seeded(42, 200, &rates);
        let c = FaultPlan::seeded(43, 200, &rates);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds draw different schedules");
        assert!(!a.is_empty());
    }

    #[test]
    fn rates_are_roughly_respected() {
        let rates = FaultRates {
            transient: 0.2,
            fatal: 0.1,
            ..FaultRates::default()
        };
        let plan = FaultPlan::seeded(7, 2000, &rates);
        let transient = plan
            .ids()
            .filter(|id| matches!(plan.fault_for(*id), Some(FaultKind::Transient { .. })))
            .count();
        let fatal = plan.len() - transient;
        // Loose bands: the point is shape, not exact calibration.
        assert!((250..=550).contains(&transient), "transient {transient}");
        assert!((80..=320).contains(&fatal), "fatal {fatal}");
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_for(0), None);
        assert_eq!(plan.fault_for(u64::MAX), None);
    }

    #[test]
    fn with_pins_and_overwrites() {
        let plan = FaultPlan::none()
            .with(3, FaultKind::Fatal { depth: 2 })
            .with(3, FaultKind::WorkerPanic)
            .with(9, FaultKind::Transient { failures: 1 });
        assert_eq!(plan.fault_for(3), Some(FaultKind::WorkerPanic));
        assert_eq!(
            plan.fault_for(9),
            Some(FaultKind::Transient { failures: 1 })
        );
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn periodic_lookup_wraps() {
        let plan = FaultPlan::none()
            .with(2, FaultKind::Fatal { depth: 1 })
            .periodic(10);
        assert_eq!(plan.fault_for(2), Some(FaultKind::Fatal { depth: 1 }));
        assert_eq!(plan.fault_for(12), Some(FaultKind::Fatal { depth: 1 }));
        assert_eq!(plan.fault_for(13), None);
        let aperiodic = plan.clone().periodic(0);
        assert_eq!(aperiodic.fault_for(12), None, "period 0 disables wrap");
    }

    #[test]
    fn drawn_bounds_hold() {
        let rates = FaultRates {
            transient: 0.3,
            fatal: 0.3,
            max_transient_failures: 3,
            max_fatal_depth: 2,
        };
        let plan = FaultPlan::seeded(11, 500, &rates);
        for id in plan.ids() {
            match plan.fault_for(id).unwrap() {
                FaultKind::Transient { failures } => assert!((1..=3).contains(&failures)),
                FaultKind::Fatal { depth } => assert!((1..=2).contains(&depth)),
                FaultKind::WorkerPanic => panic!("seeded never draws panics"),
            }
        }
    }
}
