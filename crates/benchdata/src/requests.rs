//! Seeded request streams for the serving runtime.
//!
//! A serving workload is not a benchmark sweep: real users repeat
//! popular questions (which is what makes an interpretation cache
//! worth having) and hold multi-turn conversations (which is what
//! makes session affinity worth having). [`request_stream`] turns the
//! template and session generators into one interleaved, deterministic
//! stream with both properties, parameterized by a hot-question skew
//! and a session share.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sessions::sparc_like;
use crate::slots::SlotSet;
use crate::templates::spider_like;

/// One serving request: either a standalone question (`session: None`)
/// or one turn of a conversation (`session: Some(id)`; turns of one id
/// appear in conversation order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpec {
    /// The user's utterance.
    pub question: String,
    /// Conversation id, if this request continues a dialogue.
    pub session: Option<u64>,
    /// Optional completion deadline, in the serving clock's ticks
    /// (`None` = best effort). Generators leave this `None`; drivers
    /// that exercise deadline shedding fill it in.
    pub deadline: Option<u64>,
}

impl RequestSpec {
    /// A standalone best-effort question.
    pub fn single(question: impl Into<String>) -> RequestSpec {
        RequestSpec {
            question: question.into(),
            session: None,
            deadline: None,
        }
    }
}

/// Generate a deterministic serving stream of `n` requests.
///
/// * Standalone questions are drawn from a `spider_like` pool of
///   `max(n/4, 8)` distinct questions with an 80/20-style skew: with
///   probability `0.6` a request re-asks one of the hottest 20% of the
///   pool, otherwise any pool question — so a cache sees both reuse
///   and churn.
/// * A `session_share` fraction of requests (in `[0, 1]`) are turns of
///   `sparc_like` conversations. Sessions are interleaved with singles
///   and with each other, but each session's turns appear in order —
///   the property affinity routing must preserve.
pub fn request_stream(
    slots: &SlotSet,
    seed: u64,
    n: usize,
    session_share: f64,
) -> Vec<RequestSpec> {
    assert!(
        (0.0..=1.0).contains(&session_share),
        "session_share out of [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7e_5e7e_5e7e_5e7e);
    let pool: Vec<String> = spider_like(slots, seed ^ 0x0bad_cafe, n.max(32) / 4)
        .into_iter()
        .map(|p| p.question)
        .collect();
    // Conversations to weave in. Each yields several turns; generate
    // enough sessions to cover the requested share.
    let want_session_turns = (n as f64 * session_share).round() as usize;
    let sessions = if want_session_turns == 0 {
        Vec::new()
    } else {
        sparc_like(
            slots,
            seed ^ 0xd1a1_09fe,
            want_session_turns.div_ceil(2).max(1),
        )
    };
    let mut pending: Vec<(u64, std::vec::IntoIter<String>)> = sessions
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let turns: Vec<String> = s.turns.into_iter().map(|t| t.utterance).collect();
            (i as u64, turns.into_iter())
        })
        .collect();
    let hot = (pool.len() / 5).max(1);

    let mut out = Vec::with_capacity(n);
    let mut emitted_turns = 0usize;
    while out.len() < n {
        let take_turn = emitted_turns < want_session_turns && !pending.is_empty() && {
            // Keep the realized share tracking the requested one.
            let realized = emitted_turns as f64 / (out.len() + 1) as f64;
            realized < session_share || rng.gen_bool(session_share.min(0.95))
        };
        if take_turn {
            // Round-robin-ish: pick an active conversation at random.
            let si = rng.gen_range(0..pending.len());
            let (sid, turns) = &mut pending[si];
            if let Some(utterance) = turns.next() {
                out.push(RequestSpec {
                    question: utterance,
                    session: Some(*sid),
                    deadline: None,
                });
                emitted_turns += 1;
            } else {
                pending.swap_remove(si);
            }
            continue;
        }
        let qi = if rng.gen_bool(0.6) {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..pool.len())
        };
        out.push(RequestSpec::single(pool[qi].clone()));
    }
    out
}

/// Interleave several tenants' request streams into one deterministic
/// multi-tenant stream, tagging every request with its stream key.
///
/// Each input is `(key, stream)` — in serving, the key is the tenant's
/// schema fingerprint. The seeded shuffle picks the next request from a
/// uniformly random stream that still has requests pending, popping
/// from the front, so **per-stream order is preserved exactly**: the
/// subsequence of the output belonging to one key is that key's input
/// stream verbatim. That is the property that makes a multi-tenant run
/// comparable request-for-request with isolated single-tenant runs
/// (experiment E17's isolation invariant).
pub fn interleave_streams(
    seed: u64,
    streams: Vec<(u64, Vec<RequestSpec>)>,
) -> Vec<(u64, RequestSpec)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e4a_4e7a_7e4a_4e7a);
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut pending: Vec<(u64, std::vec::IntoIter<RequestSpec>)> = streams
        .into_iter()
        .map(|(key, s)| (key, s.into_iter()))
        .collect();
    let mut out = Vec::with_capacity(total);
    while !pending.is_empty() {
        let si = rng.gen_range(0..pending.len());
        let (key, stream) = &mut pending[si];
        match stream.next() {
            Some(spec) => out.push((*key, spec)),
            None => {
                pending.swap_remove(si);
            }
        }
    }
    out
}

/// Request ids of `session`'s turns in `stream`, in conversation
/// order. Ids are submission-order stream indices — exactly what a
/// serving driver that submits the stream front to back assigns, so
/// crash schedules can pin faults on "the second turn of session 3"
/// without re-deriving the interleaving.
pub fn session_turn_ids(stream: &[RequestSpec], session: u64) -> Vec<u64> {
    stream
        .iter()
        .enumerate()
        .filter(|(_, r)| r.session == Some(session))
        .map(|(i, _)| i as u64)
        .collect()
}

/// Session ids that hold at least `min_turns` turns in `stream`,
/// ascending. Crash-recovery regimes need conversations with history
/// *before* the crash and turns *after* it — a one-turn session can't
/// demonstrate replay.
pub fn sessions_with_min_turns(stream: &[RequestSpec], min_turns: usize) -> Vec<u64> {
    let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
    for r in stream {
        if let Some(id) = r.session {
            *counts.entry(id).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= min_turns)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::retail_database;
    use crate::slots::derive_slots;

    fn slots() -> SlotSet {
        derive_slots(&retail_database(7))
    }

    #[test]
    fn stream_is_deterministic() {
        let s = slots();
        let a = request_stream(&s, 42, 120, 0.3);
        let b = request_stream(&s, 42, 120, 0.3);
        let c = request_stream(&s, 43, 120, 0.3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn singles_repeat_for_cache_reuse() {
        let s = slots();
        let stream = request_stream(&s, 42, 200, 0.0);
        let distinct: std::collections::HashSet<&str> =
            stream.iter().map(|r| r.question.as_str()).collect();
        assert!(stream.iter().all(|r| r.session.is_none()));
        assert!(
            distinct.len() < stream.len() / 2,
            "hot-question skew must produce repeats: {} distinct of {}",
            distinct.len(),
            stream.len()
        );
    }

    #[test]
    fn session_turns_stay_in_order() {
        let s = slots();
        let stream = request_stream(&s, 42, 160, 0.4);
        let turn_count = stream.iter().filter(|r| r.session.is_some()).count();
        assert!(turn_count > 0, "requested sessions must appear");
        // Turns of each id must be a prefix of that conversation as
        // sparc_like generated it (same derived seed and count as
        // request_stream uses internally for n=160, share=0.4).
        let gold = sparc_like(&s, 42 ^ 0xd1a1_09fe, 32);
        let mut per_session: std::collections::HashMap<u64, Vec<&str>> = Default::default();
        for r in &stream {
            if let Some(id) = r.session {
                per_session.entry(id).or_default().push(r.question.as_str());
            }
        }
        for (id, got) in &per_session {
            let want: Vec<&str> = gold[*id as usize]
                .turns
                .iter()
                .map(|t| t.utterance.as_str())
                .collect();
            assert!(
                got.len() <= want.len() && got.iter().zip(&want).all(|(g, w)| g == w),
                "session {id} turns out of order"
            );
        }
    }

    #[test]
    fn interleaving_preserves_per_stream_order() {
        let s = slots();
        let a = request_stream(&s, 42, 60, 0.25);
        let b = request_stream(&s, 43, 40, 0.0);
        let c = request_stream(&s, 44, 50, 0.5);
        let streams = vec![(10u64, a.clone()), (20u64, b.clone()), (30u64, c.clone())];
        let mixed = interleave_streams(42, streams.clone());
        assert_eq!(mixed.len(), 150);
        // Per-key subsequences are the inputs verbatim.
        for (key, want) in [(10u64, &a), (20u64, &b), (30u64, &c)] {
            let got: Vec<&RequestSpec> = mixed
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, r)| r)
                .collect();
            assert_eq!(got.len(), want.len());
            assert!(got.iter().zip(want.iter()).all(|(g, w)| **g == *w));
        }
        // Deterministic in the seed, and the seed matters.
        assert_eq!(mixed, interleave_streams(42, streams.clone()));
        assert_ne!(mixed, interleave_streams(43, streams));
        // Streams are actually interleaved, not concatenated.
        let first_key = mixed[0].0;
        assert!(
            mixed[..60].iter().any(|(k, _)| *k != first_key),
            "expected a key switch within the first stream's length"
        );
    }

    #[test]
    #[should_panic(expected = "session_share")]
    fn rejects_bad_share() {
        let s = slots();
        request_stream(&s, 1, 10, 1.5);
    }

    #[test]
    fn turn_ids_index_the_stream_in_conversation_order() {
        let s = slots();
        let stream = request_stream(&s, 42, 160, 0.4);
        let sessions = sessions_with_min_turns(&stream, 3);
        assert!(
            !sessions.is_empty(),
            "the mixed stream must hold multi-turn sessions"
        );
        assert!(sessions.windows(2).all(|w| w[0] < w[1]), "ascending ids");
        for &sid in &sessions {
            let ids = session_turn_ids(&stream, sid);
            assert!(ids.len() >= 3);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "submission order");
            for &id in &ids {
                assert_eq!(stream[id as usize].session, Some(sid));
            }
        }
        // The two views agree on turn counts.
        for &sid in &sessions {
            let n = stream.iter().filter(|r| r.session == Some(sid)).count();
            assert_eq!(session_turn_ids(&stream, sid).len(), n);
        }
        assert!(session_turn_ids(&stream, 9_999).is_empty());
        assert!(sessions_with_min_turns(&stream, 1_000).is_empty());
    }
}
