//! Template slots derived automatically from a domain's ontology.
//!
//! The template engine never hard-codes a schema: it asks the derived
//! ontology for dimension/fact concepts, their descriptors, measures,
//! categoricals, temporals, and live data values — so any database
//! that the ontology generator understands can feed the benchmark.

use nlidb_engine::{Database, Value};
use nlidb_ontology::{generate_ontology, JoinGraph, Ontology, PropertyRole};

/// One concept's template-relevant handles.
#[derive(Debug, Clone)]
pub struct ConceptSlots {
    /// Concept label (singular).
    pub concept: String,
    /// Backing table.
    pub table: String,
    /// Plural surface form used in questions.
    pub plural: String,
    /// Descriptor property (label, column), if any.
    pub descriptor: Option<(String, String)>,
    /// Categorical properties (label, column, sample values).
    pub categoricals: Vec<(String, String, Vec<String>)>,
    /// Measure properties (label, column, sorted sample values).
    pub measures: Vec<(String, String, Vec<f64>)>,
    /// Temporal property (label, column, distinct years in the data),
    /// if any.
    pub temporal: Option<(String, String, Vec<i32>)>,
    /// Primary-key column, if any.
    pub primary_key: Option<String>,
}

/// A related pair: `fact` carries a foreign key to `dim`.
#[derive(Debug, Clone)]
pub struct RelatedPair {
    /// Index into [`SlotSet::concepts`] of the dimension side.
    pub dim: usize,
    /// Index into [`SlotSet::concepts`] of the fact side.
    pub fact: usize,
    /// FK column on the fact table.
    pub fk_column: String,
    /// Referenced column on the dimension table.
    pub pk_column: String,
}

/// All slots derived for one domain.
#[derive(Debug, Clone)]
pub struct SlotSet {
    /// Domain (database) name.
    pub domain: String,
    /// Per-concept handles.
    pub concepts: Vec<ConceptSlots>,
    /// Direct FK pairs.
    pub pairs: Vec<RelatedPair>,
    /// The derived ontology (templates occasionally need roles).
    pub ontology: Ontology,
    /// Join graph over the ontology.
    pub graph: JoinGraph,
}

impl SlotSet {
    /// Concepts that have at least one categorical with values.
    pub fn with_categorical(&self) -> Vec<usize> {
        (0..self.concepts.len())
            .filter(|&i| {
                self.concepts[i]
                    .categoricals
                    .iter()
                    .any(|(_, _, v)| !v.is_empty())
            })
            .collect()
    }

    /// Concepts that have at least one measure.
    pub fn with_measure(&self) -> Vec<usize> {
        (0..self.concepts.len())
            .filter(|&i| !self.concepts[i].measures.is_empty())
            .collect()
    }

    /// Concepts with both a categorical and a measure (single-table
    /// aggregation templates).
    pub fn with_both(&self) -> Vec<usize> {
        self.with_measure()
            .into_iter()
            .filter(|i| self.with_categorical().contains(i))
            .collect()
    }
}

/// Derive the slot set for a database.
pub fn derive_slots(db: &Database) -> SlotSet {
    let ontology = generate_ontology(db);
    let graph = JoinGraph::from_ontology(&ontology);
    let mut concepts = Vec::new();
    for c in &ontology.concepts {
        let table = db.table(&c.table).expect("ontology table exists");
        let mut slots = ConceptSlots {
            concept: c.label.clone(),
            table: c.table.clone(),
            plural: c.table.clone(), // table names are already plural
            descriptor: None,
            categoricals: Vec::new(),
            measures: Vec::new(),
            temporal: None,
            primary_key: c.primary_key.clone(),
        };
        for p in ontology.properties_of(&c.label) {
            match p.role {
                PropertyRole::Descriptor => {
                    slots.descriptor = Some((p.label.clone(), p.column.clone()));
                }
                PropertyRole::Categorical => {
                    let values: Vec<String> = table
                        .distinct_values(&p.column)
                        .into_iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s),
                            _ => None,
                        })
                        .collect();
                    slots
                        .categoricals
                        .push((p.label.clone(), p.column.clone(), values));
                }
                PropertyRole::Measure => {
                    let mut values: Vec<f64> = table
                        .distinct_values(&p.column)
                        .into_iter()
                        .filter_map(|v| v.as_f64())
                        .collect();
                    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    slots
                        .measures
                        .push((p.label.clone(), p.column.clone(), values));
                }
                PropertyRole::Temporal => {
                    let mut years: Vec<i32> = table
                        .distinct_values(&p.column)
                        .into_iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => s.get(0..4).and_then(|y| y.parse().ok()),
                            _ => None,
                        })
                        .collect();
                    years.sort_unstable();
                    years.dedup();
                    slots.temporal = Some((p.label.clone(), p.column.clone(), years));
                }
                PropertyRole::Identifier => {}
            }
        }
        concepts.push(slots);
    }
    let index_of = |label: &str| concepts.iter().position(|c| c.concept == label);
    let mut pairs = Vec::new();
    for r in &ontology.object_properties {
        if let (Some(fact), Some(dim)) = (index_of(&r.from), index_of(&r.to)) {
            pairs.push(RelatedPair {
                dim,
                fact,
                fk_column: r.from_column.clone(),
                pk_column: r.to_column.clone(),
            });
        }
    }
    SlotSet {
        domain: db.name.clone(),
        concepts,
        pairs,
        ontology,
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::retail_database;

    #[test]
    fn retail_slots_are_complete() {
        let s = derive_slots(&retail_database(5));
        assert_eq!(s.domain, "retail");
        assert_eq!(s.concepts.len(), 3);
        let customer = s.concepts.iter().find(|c| c.concept == "customer").unwrap();
        assert_eq!(customer.descriptor.as_ref().unwrap().1, "name");
        assert!(customer
            .categoricals
            .iter()
            .any(|(l, _, v)| l == "city" && !v.is_empty()));
        assert!(customer.temporal.is_some());
        let order = s.concepts.iter().find(|c| c.concept == "order").unwrap();
        assert_eq!(order.measures.len(), 1);
        assert!(
            order.measures[0].2.windows(2).all(|w| w[0] <= w[1]),
            "sorted"
        );
    }

    #[test]
    fn pairs_cover_both_fks() {
        let s = derive_slots(&retail_database(5));
        assert_eq!(s.pairs.len(), 2);
        let facts: Vec<&str> = s
            .pairs
            .iter()
            .map(|p| s.concepts[p.fact].concept.as_str())
            .collect();
        assert_eq!(facts, vec!["order", "order"]);
    }

    #[test]
    fn helper_filters() {
        let s = derive_slots(&retail_database(5));
        assert!(!s.with_categorical().is_empty());
        assert!(!s.with_measure().is_empty());
        // products have both a categorical (category) and measure (price)
        let product_idx = s
            .concepts
            .iter()
            .position(|c| c.concept == "product")
            .unwrap();
        assert!(s.with_both().contains(&product_idx));
    }

    #[test]
    fn all_domains_derive() {
        for db in crate::schemas::all_domains(9) {
            let s = derive_slots(&db);
            assert!(!s.concepts.is_empty(), "{}", db.name);
            assert!(!s.pairs.is_empty(), "{}", db.name);
        }
    }
}
