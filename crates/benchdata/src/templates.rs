//! Question/SQL pair generation across the survey's complexity ladder.
//!
//! `wikisql_like` mirrors WikiSQL's regime (single table, simple
//! selection + global aggregates); `spider_like` mirrors Spider's
//! (cross-complexity, up to joins and nested sub-queries). Gold SQL is
//! constructed directly from the derived ontology, so execution
//! accuracy against the in-memory engine is well-defined.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nlidb_sqlir::ast::{AggFunc, BinOp, Expr, Query, SelectItem, TableSource};
use nlidb_sqlir::{classify, ComplexityClass, QueryBuilder};

use crate::slots::{ConceptSlots, RelatedPair, SlotSet};

/// One benchmark example.
#[derive(Debug, Clone)]
pub struct QaPair {
    /// Stable identifier: `{domain}/{template}/{serial}`.
    pub id: String,
    /// Domain name.
    pub domain: String,
    /// The natural-language question (canonical form; paraphrase
    /// separately with [`crate::paraphrase()`]).
    pub question: String,
    /// Gold SQL.
    pub sql: Query,
    /// Complexity rung.
    pub class: ComplexityClass,
    /// Words that must survive paraphrasing verbatim (values, numbers).
    pub protected: Vec<String>,
}

/// Comparison phrasing variants and their operators.
const GT_PHRASES: [&str; 4] = ["greater than", "more than", "over", "above"];
const LT_PHRASES: [&str; 3] = ["less than", "under", "below"];

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// A measure threshold near the middle of the data (non-trivial
/// selectivity), rounded to an integer.
fn mid_threshold(values: &[f64], rng: &mut StdRng) -> i64 {
    if values.is_empty() {
        return 10;
    }
    let lo = values.len() / 4;
    let hi = (3 * values.len() / 4).max(lo + 1).min(values.len());
    values[rng.gen_range(lo..hi)].round() as i64
}

struct TemplateCtx<'a> {
    slots: &'a SlotSet,
    rng: StdRng,
    serial: usize,
}

impl<'a> TemplateCtx<'a> {
    fn mk(
        &mut self,
        template: &str,
        question: String,
        sql: Query,
        protected: Vec<String>,
    ) -> QaPair {
        self.serial += 1;
        QaPair {
            id: format!("{}/{}/{}", self.slots.domain, template, self.serial),
            domain: self.slots.domain.clone(),
            class: classify(&sql),
            question,
            sql,
            protected,
        }
    }

    fn concept(&mut self, indices: &[usize]) -> Option<&'a ConceptSlots> {
        if indices.is_empty() {
            return None;
        }
        let i = *pick(&mut self.rng, indices);
        Some(&self.slots.concepts[i])
    }

    fn categorical(&mut self, c: &'a ConceptSlots) -> Option<(&'a str, &'a str, String)> {
        let with_values: Vec<&(String, String, Vec<String>)> = c
            .categoricals
            .iter()
            .filter(|(_, _, v)| !v.is_empty())
            .collect();
        if with_values.is_empty() {
            return None;
        }
        let entry = with_values[self.rng.gen_range(0..with_values.len())];
        let v = entry.2[self.rng.gen_range(0..entry.2.len())].clone();
        Some((entry.0.as_str(), entry.1.as_str(), v))
    }

    fn measure(&mut self, c: &'a ConceptSlots) -> Option<(&'a str, &'a str, i64)> {
        if c.measures.is_empty() {
            return None;
        }
        let entry = &c.measures[self.rng.gen_range(0..c.measures.len())];
        let t = mid_threshold(&entry.2, &mut self.rng);
        Some((entry.0.as_str(), entry.1.as_str(), t))
    }

    // ---------- Selection templates ----------

    fn s_all(&mut self) -> Option<QaPair> {
        let c = self.concept(&(0..self.slots.concepts.len()).collect::<Vec<_>>())?;
        let verb = *pick(&mut self.rng, &["show all", "list the", "display all"]);
        let q = format!("{verb} {}", c.plural);
        let sql = QueryBuilder::from_table(&c.table).build();
        Some(self.mk("s_all", q, sql, vec![]))
    }

    fn s_cat(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_categorical())?;
        let (label, column, v) = self.categorical(c)?;
        let wording = self.rng.gen_range(0..2);
        let q = match wording {
            0 => format!("show {} in {v}", c.plural),
            _ => format!("show {} with {label} {v}", c.plural),
        };
        let sql = QueryBuilder::from_table(&c.table)
            .and_where(Expr::col(column).eq(Expr::str(v.clone())))
            .build();
        let protected = v.split_whitespace().map(str::to_string).collect();
        Some(self.mk("s_cat", q, sql, protected))
    }

    fn s_cmp(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_measure())?;
        let (label, column, t) = self.measure(c)?;
        let gt = self.rng.gen_bool(0.6);
        let phrase = if gt {
            *pick(&mut self.rng, &GT_PHRASES)
        } else {
            *pick(&mut self.rng, &LT_PHRASES)
        };
        let q = format!("show {} with {label} {phrase} {t}", c.plural);
        let op = if gt { BinOp::Gt } else { BinOp::Lt };
        let sql = QueryBuilder::from_table(&c.table)
            .and_where(Expr::col(column).binary(op, Expr::int(t)))
            .build();
        Some(self.mk("s_cmp", q, sql, vec![t.to_string()]))
    }

    fn s_proj(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_categorical())?;
        let (desc_label, desc_col) = c.descriptor.clone()?;
        let (_, column, v) = self.categorical(c)?;
        let q = format!("show the {desc_label} of {} in {v}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .select_col(desc_col)
            .and_where(Expr::col(column).eq(Expr::str(v.clone())))
            .build();
        let protected = v.split_whitespace().map(str::to_string).collect();
        Some(self.mk("s_proj", q, sql, protected))
    }

    fn s_cat_or(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_categorical())?;
        let entry: &(String, String, Vec<String>) =
            c.categoricals.iter().find(|(_, _, v)| v.len() >= 2)?;
        let (label, column, values) = (&entry.0, &entry.1, &entry.2);
        let i = self.rng.gen_range(0..values.len());
        let j = (i + 1 + self.rng.gen_range(0..values.len() - 1)) % values.len();
        let (v1, v2) = (values[i].clone(), values[j].clone());
        if v1 == v2 {
            return None;
        }
        let q = format!("show {} with {label} {v1} or {v2}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .and_where(Expr::InList {
                expr: Box::new(Expr::col(column.clone())),
                list: vec![Expr::str(v1.clone()), Expr::str(v2.clone())],
                negated: false,
            })
            .build();
        let mut protected: Vec<String> = v1.split_whitespace().map(str::to_string).collect();
        protected.extend(v2.split_whitespace().map(str::to_string));
        Some(self.mk("s_cat_or", q, sql, protected))
    }

    fn s_between(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_measure())?;
        let entry = &c.measures[self.rng.gen_range(0..c.measures.len())];
        let (label, column, values) = (&entry.0, &entry.1, &entry.2);
        if values.len() < 4 {
            return None;
        }
        let lo = values[values.len() / 4].round() as i64;
        let hi = values[3 * values.len() / 4].round() as i64;
        if lo >= hi {
            return None;
        }
        let q = format!("show {} with {label} between {lo} and {hi}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .and_where(Expr::Between {
                expr: Box::new(Expr::col(column.clone())),
                low: Box::new(Expr::int(lo)),
                high: Box::new(Expr::int(hi)),
                negated: false,
            })
            .build();
        Some(self.mk("s_between", q, sql, vec![lo.to_string(), hi.to_string()]))
    }

    fn s_date(&mut self) -> Option<QaPair> {
        let with_temporal: Vec<usize> = (0..self.slots.concepts.len())
            .filter(|&i| {
                self.slots.concepts[i]
                    .temporal
                    .as_ref()
                    .map(|(_, _, years)| years.len() >= 3)
                    .unwrap_or(false)
            })
            .collect();
        let c = self.concept(&with_temporal)?;
        let (_label, column, years) = c.temporal.clone()?;
        let year = years[self.rng.gen_range(1..years.len() - 1)];
        let (phrase, pred) = match self.rng.gen_range(0..3) {
            0 => (
                format!("in {year}"),
                Expr::Between {
                    expr: Box::new(Expr::col(column.clone())),
                    low: Box::new(Expr::str(format!("{year}-01-01"))),
                    high: Box::new(Expr::str(format!("{year}-12-31"))),
                    negated: false,
                },
            ),
            1 => (
                format!("before {year}"),
                Expr::col(column.clone()).binary(BinOp::Lt, Expr::str(format!("{year}-01-01"))),
            ),
            _ => (
                format!("after {year}"),
                Expr::col(column.clone()).binary(BinOp::Gt, Expr::str(format!("{year}-12-31"))),
            ),
        };
        // Surface the temporal property via a verb-ish phrasing the
        // interpreters understand ("orders placed before 2020" still
        // binds the concept's temporal column).
        let q = format!("show {} dated {phrase}", c.plural);
        let sql = QueryBuilder::from_table(&c.table).and_where(pred).build();
        Some(self.mk("s_date", q, sql, vec![year.to_string()]))
    }

    fn a_distinct(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_categorical())?;
        let (label, column, _) = self.categorical(c)?;
        let word = *pick(&mut self.rng, &["unique", "distinct", "different"]);
        let q = format!("{word} {label} of {}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .distinct()
            .select_col(column)
            .build();
        Some(self.mk("a_distinct", q, sql, vec![]))
    }

    // ---------- Single-table aggregation templates ----------

    fn a_group(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_both())?;
        let (m_label, m_col, _) = self.measure(c)?;
        let (c_label, c_col, _) = self.categorical(c)?;
        let (word, func) = *pick(
            &mut self.rng,
            &[("total", AggFunc::Sum), ("average", AggFunc::Avg)],
        );
        let q = format!("{word} {m_label} by {c_label}");
        let sql = QueryBuilder::from_table(&c.table)
            .select_col(c_col)
            .select_agg(func, Expr::col(m_col), None)
            .group_by(Expr::col(c_col))
            .build();
        Some(self.mk("a_group", q, sql, vec![]))
    }

    fn a_global(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_measure())?;
        let (m_label, m_col, _) = self.measure(c)?;
        let (word, func) = *pick(
            &mut self.rng,
            &[
                ("average", AggFunc::Avg),
                ("total", AggFunc::Sum),
                ("maximum", AggFunc::Max),
                ("minimum", AggFunc::Min),
            ],
        );
        let q = format!("{word} {m_label} of {}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .select_agg(func, Expr::col(m_col), None)
            .build();
        Some(self.mk("a_global", q, sql, vec![]))
    }

    fn a_count(&mut self) -> Option<QaPair> {
        let c = self.concept(&(0..self.slots.concepts.len()).collect::<Vec<_>>())?;
        let wording = *pick(
            &mut self.rng,
            &["how many {p} are there", "count the {p}", "number of {p}"],
        );
        let q = wording.replace("{p}", &c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .select_expr(Expr::count_star(), None)
            .build();
        Some(self.mk("a_count", q, sql, vec![]))
    }

    fn a_count_group(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_categorical())?;
        let (c_label, c_col, _) = self.categorical(c)?;
        let q = format!("count of {} per {c_label}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .select_col(c_col)
            .select_expr(Expr::count_star(), None)
            .group_by(Expr::col(c_col))
            .build();
        Some(self.mk("a_count_group", q, sql, vec![]))
    }

    fn a_top(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_measure())?;
        let (m_label, m_col, _) = self.measure(c)?;
        let k = self.rng.gen_range(2..=5);
        let q = format!("top {k} {} by {m_label}", c.plural);
        let sql = QueryBuilder::from_table(&c.table)
            .order_by(Expr::col(m_col), false)
            .limit(k)
            .build();
        Some(self.mk("a_top", q, sql, vec![k.to_string()]))
    }

    // ---------- Join templates ----------

    fn pair_with(
        &mut self,
        need_dim_cat: bool,
        need_fact_measure: bool,
    ) -> Option<&'a RelatedPair> {
        let candidates: Vec<&RelatedPair> = self
            .slots
            .pairs
            .iter()
            .filter(|p| {
                let dim = &self.slots.concepts[p.dim];
                let fact = &self.slots.concepts[p.fact];
                (!need_dim_cat || dim.categoricals.iter().any(|(_, _, v)| !v.is_empty()))
                    && (!need_fact_measure || !fact.measures.is_empty())
            })
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }

    fn join_query(&self, pair: &RelatedPair, from_fact: bool) -> QueryBuilder {
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        if from_fact {
            QueryBuilder::from_table(&fact.table).join(
                &dim.table,
                Expr::qcol(fact.table.clone(), pair.fk_column.clone())
                    .eq(Expr::qcol(dim.table.clone(), pair.pk_column.clone())),
            )
        } else {
            QueryBuilder::from_table(&dim.table).join(
                &fact.table,
                Expr::qcol(dim.table.clone(), pair.pk_column.clone())
                    .eq(Expr::qcol(fact.table.clone(), pair.fk_column.clone())),
            )
        }
    }

    fn j_agg(&mut self) -> Option<QaPair> {
        let pair = self.pair_with(true, true)?.clone();
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        let m = fact.measures.first()?;
        let (m_label, m_col) = (m.0.clone(), m.1.clone());
        let cat = dim.categoricals.iter().find(|(_, _, v)| !v.is_empty())?;
        let (c_label, c_col) = (cat.0.clone(), cat.1.clone());
        let q = format!(
            "total {} {m_label} by {} {c_label}",
            fact.concept, dim.concept
        );
        let sql = self
            .join_query(&pair, true)
            .select_expr(Expr::qcol(dim.table.clone(), c_col.clone()), None)
            .select_agg(AggFunc::Sum, Expr::qcol(fact.table.clone(), m_col), None)
            .group_by(Expr::qcol(dim.table.clone(), c_col))
            .build();
        Some(self.mk("j_agg", q, sql, vec![]))
    }

    fn j_filter(&mut self) -> Option<QaPair> {
        let pair = self.pair_with(false, true)?.clone();
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        let (desc_label, desc_col) = dim.descriptor.clone()?;
        let m = fact.measures.first()?;
        let (m_label, m_col) = (m.0.clone(), m.1.clone());
        let t = mid_threshold(&m.2.clone(), &mut self.rng);
        let phrase = *pick(&mut self.rng, &GT_PHRASES);
        let q = format!(
            "show the {desc_label} of {} with {} {m_label} {phrase} {t}",
            dim.plural, fact.concept
        );
        let sql = self
            .join_query(&pair, false)
            .select_expr(Expr::qcol(dim.table.clone(), desc_col), None)
            .and_where(Expr::qcol(fact.table.clone(), m_col).binary(BinOp::Gt, Expr::int(t)))
            .build();
        Some(self.mk("j_filter", q, sql, vec![t.to_string()]))
    }

    fn j_having(&mut self) -> Option<QaPair> {
        let pair = self.pair_with(false, false)?.clone();
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        let (_, desc_col) = dim.descriptor.clone()?;
        let k = self.rng.gen_range(2..=6);
        let q = format!("{} with more than {k} {}", dim.plural, fact.plural);
        let sql = self
            .join_query(&pair, false)
            .select_expr(Expr::qcol(dim.table.clone(), desc_col.clone()), None)
            .group_by(Expr::qcol(dim.table.clone(), desc_col))
            .and_having(Expr::count_star().binary(BinOp::Gt, Expr::int(k)))
            .build();
        Some(self.mk("j_having", q, sql, vec![k.to_string()]))
    }

    // ---------- Nested templates ----------

    fn n_without(&mut self) -> Option<QaPair> {
        let pair = self.pair_with(false, false)?.clone();
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        let q = format!("{} without {}", dim.plural, fact.plural);
        let inner = Query {
            select: vec![SelectItem::expr(Expr::qcol(
                fact.table.clone(),
                pair.fk_column.clone(),
            ))],
            from: Some(TableSource::table(fact.table.clone())),
            ..Query::default()
        };
        let sql = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table(dim.table.clone())),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col(pair.pk_column.clone())),
                subquery: Box::new(inner),
                negated: true,
            }),
            ..Query::default()
        };
        Some(self.mk("n_without", q, sql, vec![]))
    }

    fn n_has(&mut self) -> Option<QaPair> {
        let pair = self.pair_with(false, false)?.clone();
        let dim = &self.slots.concepts[pair.dim];
        let fact = &self.slots.concepts[pair.fact];
        let q = format!("{} that have {}", dim.plural, fact.plural);
        let inner = Query {
            select: vec![SelectItem::expr(Expr::qcol(
                fact.table.clone(),
                pair.fk_column.clone(),
            ))],
            from: Some(TableSource::table(fact.table.clone())),
            ..Query::default()
        };
        let sql = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table(dim.table.clone())),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col(pair.pk_column.clone())),
                subquery: Box::new(inner),
                negated: false,
            }),
            ..Query::default()
        };
        Some(self.mk("n_has", q, sql, vec![]))
    }

    fn n_above_avg(&mut self) -> Option<QaPair> {
        let c = self.concept(&self.slots.with_measure())?;
        let (m_label, m_col, _) = self.measure(c)?;
        let dir = self.rng.gen_bool(0.7);
        let word = if dir { "above" } else { "below" };
        let q = format!("{} with {m_label} {word} average", c.plural);
        let inner = Query {
            select: vec![SelectItem::expr(Expr::agg(AggFunc::Avg, Expr::col(m_col)))],
            from: Some(TableSource::table(c.table.clone())),
            ..Query::default()
        };
        let op = if dir { BinOp::Gt } else { BinOp::Lt };
        let sql = Query {
            select: vec![SelectItem::Wildcard],
            from: Some(TableSource::table(c.table.clone())),
            where_clause: Some(Expr::col(m_col).binary(op, Expr::ScalarSubquery(Box::new(inner)))),
            ..Query::default()
        };
        Some(self.mk("n_above_avg", q, sql, vec![]))
    }
}

type TemplateFn<'a> = fn(&mut TemplateCtx<'a>) -> Option<QaPair>;

fn template_families<'a>() -> [Vec<TemplateFn<'a>>; 4] {
    [
        vec![
            TemplateCtx::s_all,
            TemplateCtx::s_cat,
            TemplateCtx::s_cmp,
            TemplateCtx::s_proj,
            TemplateCtx::s_between,
            TemplateCtx::s_date,
            TemplateCtx::s_cat_or,
        ],
        vec![
            TemplateCtx::a_group,
            TemplateCtx::a_global,
            TemplateCtx::a_count,
            TemplateCtx::a_count_group,
            TemplateCtx::a_top,
            TemplateCtx::a_distinct,
        ],
        vec![
            TemplateCtx::j_agg,
            TemplateCtx::j_filter,
            TemplateCtx::j_having,
        ],
        vec![
            TemplateCtx::n_without,
            TemplateCtx::n_has,
            TemplateCtx::n_above_avg,
        ],
    ]
}

/// Generate a Spider-like suite over one domain: `n` questions cycled
/// evenly across the four complexity rungs.
pub fn spider_like(slots: &SlotSet, seed: u64, n: usize) -> Vec<QaPair> {
    let mut ctx = TemplateCtx {
        slots,
        rng: StdRng::seed_from_u64(seed),
        serial: 0,
    };
    let mut out = Vec::with_capacity(n);
    let families = template_families();
    let mut i = 0;
    while out.len() < n && i < n * 8 {
        let family = &families[i % families.len()];
        let f = family[ctx.rng.gen_range(0..family.len())];
        if let Some(pair) = f(&mut ctx) {
            out.push(pair);
        }
        i += 1;
    }
    out
}

/// Generate a WikiSQL-like suite: single-table selection and global
/// aggregation only (the neural sketch's regime).
pub fn wikisql_like(slots: &SlotSet, seed: u64, n: usize) -> Vec<QaPair> {
    let mut ctx = TemplateCtx {
        slots,
        rng: StdRng::seed_from_u64(seed),
        serial: 0,
    };
    let simple: Vec<TemplateFn<'_>> = vec![
        TemplateCtx::s_all,
        TemplateCtx::s_cat,
        TemplateCtx::s_cmp,
        TemplateCtx::s_proj,
        TemplateCtx::a_global,
        TemplateCtx::a_count,
    ];
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while out.len() < n && i < n * 8 {
        let f = simple[i % simple.len()];
        if let Some(pair) = f(&mut ctx) {
            out.push(pair);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::{all_domains, retail_database};
    use crate::slots::derive_slots;
    use nlidb_engine::execute;

    #[test]
    fn spider_like_covers_all_classes() {
        let db = retail_database(11);
        let slots = derive_slots(&db);
        let suite = spider_like(&slots, 21, 60);
        assert_eq!(suite.len(), 60);
        for class in ComplexityClass::all() {
            assert!(
                suite.iter().any(|p| p.class == class),
                "missing class {class:?}"
            );
        }
    }

    #[test]
    fn gold_sql_executes_everywhere() {
        for db in all_domains(13) {
            let slots = derive_slots(&db);
            for pair in spider_like(&slots, 5, 40) {
                let res = execute(&db, &pair.sql);
                assert!(
                    res.is_ok(),
                    "{}: {} failed: {:?}",
                    pair.id,
                    pair.sql,
                    res.err()
                );
            }
        }
    }

    #[test]
    fn most_filters_are_selective_but_nonempty() {
        let db = retail_database(17);
        let slots = derive_slots(&db);
        let suite = spider_like(&slots, 3, 60);
        let mut nonempty = 0;
        let mut total = 0;
        for pair in &suite {
            let rs = execute(&db, &pair.sql).unwrap();
            total += 1;
            if !rs.rows.is_empty() {
                nonempty += 1;
            }
        }
        assert!(
            nonempty * 10 >= total * 7,
            "too many empty answers: {nonempty}/{total}"
        );
    }

    #[test]
    fn wikisql_like_stays_in_sketch() {
        let db = retail_database(19);
        let slots = derive_slots(&db);
        for pair in wikisql_like(&slots, 7, 50) {
            assert!(pair.sql.joins.is_empty(), "{}", pair.id);
            assert!(!pair.sql.has_subquery(), "{}", pair.id);
            assert!(pair.sql.group_by.is_empty(), "{}", pair.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let db = retail_database(23);
        let slots = derive_slots(&db);
        let a = spider_like(&slots, 9, 30);
        let b = spider_like(&slots, 9, 30);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn protected_words_appear_in_question() {
        let db = retail_database(29);
        let slots = derive_slots(&db);
        for pair in spider_like(&slots, 31, 40) {
            for w in &pair.protected {
                assert!(
                    pair.question.contains(w.as_str()),
                    "{}: protected {w} not in question '{}'",
                    pair.id,
                    pair.question
                );
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let db = retail_database(37);
        let slots = derive_slots(&db);
        let suite = spider_like(&slots, 41, 50);
        let ids: std::collections::HashSet<_> = suite.iter().map(|p| &p.id).collect();
        assert_eq!(ids.len(), suite.len());
    }
}
