//! Dataset statistics — the E7 harness.
//!
//! §6 reports headline numbers for the public benchmarks; this module
//! computes the same statistics for our synthetic counterparts so the
//! experiment harness can print paper-vs-generated tables at a
//! configurable scale factor.

use std::collections::HashSet;

use nlidb_sqlir::ComplexityClass;

use crate::sessions::SessionExample;
use crate::templates::QaPair;

/// Statistics of one generated (or published) dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of question/SQL pairs (0 for pure session sets).
    pub questions: usize,
    /// Number of distinct tables referenced.
    pub tables: usize,
    /// Number of domains (databases).
    pub domains: usize,
    /// Number of multi-turn sequences (0 for single-turn sets).
    pub sequences: usize,
    /// Total dialogue turns (0 for single-turn sets).
    pub turns: usize,
    /// Per-complexity-class question counts (ladder order).
    pub per_class: [usize; 4],
}

impl DatasetStats {
    /// Mean turns per sequence (0 when not a session set).
    pub fn turns_per_sequence(&self) -> f64 {
        if self.sequences == 0 {
            0.0
        } else {
            self.turns as f64 / self.sequences as f64
        }
    }
}

/// Compute statistics over generated QA pairs (possibly spanning
/// several domains) and sessions.
pub fn dataset_stats(name: &str, pairs: &[QaPair], sessions: &[SessionExample]) -> DatasetStats {
    let mut tables: HashSet<String> = HashSet::new();
    let mut domains: HashSet<&str> = HashSet::new();
    let mut per_class = [0usize; 4];
    for p in pairs {
        domains.insert(&p.domain);
        collect_tables(&p.sql, &mut tables);
        let idx = ComplexityClass::all()
            .iter()
            .position(|c| *c == p.class)
            .unwrap_or(0);
        per_class[idx] += 1;
    }
    for s in sessions {
        domains.insert(&s.domain);
        for t in &s.turns {
            collect_tables(&t.gold, &mut tables);
        }
    }
    DatasetStats {
        name: name.to_string(),
        questions: pairs.len(),
        tables: tables.len(),
        domains: domains.len(),
        sequences: sessions.len(),
        turns: sessions.iter().map(|s| s.turns.len()).sum(),
        per_class,
    }
}

fn collect_tables(q: &nlidb_sqlir::Query, out: &mut HashSet<String>) {
    use nlidb_sqlir::ast::TableSource;
    if let Some(TableSource::Table { name, .. }) = &q.from {
        out.insert(name.clone());
    }
    for j in &q.joins {
        if let TableSource::Table { name, .. } = &j.source {
            out.insert(name.clone());
        }
    }
    for sub in q.direct_subqueries() {
        collect_tables(sub, out);
    }
}

/// The paper-reported reference statistics (§6 Benchmarks), for the
/// paper-vs-generated comparison table.
pub fn paper_reference() -> Vec<DatasetStats> {
    vec![
        DatasetStats {
            name: "WikiSQL (paper)".into(),
            questions: 80_654,
            tables: 24_241,
            domains: 1, // Wikipedia tables, single-table regime
            sequences: 0,
            turns: 0,
            per_class: [0, 0, 0, 0],
        },
        DatasetStats {
            name: "WikiTableQuestions (paper)".into(),
            questions: 22_033,
            tables: 2_108,
            domains: 1,
            sequences: 0,
            turns: 0,
            per_class: [0, 0, 0, 0],
        },
        DatasetStats {
            name: "SParC (paper)".into(),
            questions: 0,
            tables: 0,
            domains: 138,
            sequences: 4_000,
            turns: 12_000, // ~3 questions per coherent sequence
            per_class: [0, 0, 0, 0],
        },
        DatasetStats {
            name: "CoSQL (paper)".into(),
            questions: 10_000, // annotated SQL queries
            tables: 0,
            domains: 138,
            sequences: 3_000,
            turns: 30_000,
            per_class: [0, 0, 0, 0],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::retail_database;
    use crate::sessions::sparc_like;
    use crate::slots::derive_slots;
    use crate::templates::spider_like;

    #[test]
    fn stats_count_correctly() {
        let db = retail_database(3);
        let slots = derive_slots(&db);
        let pairs = spider_like(&slots, 5, 40);
        let sessions = sparc_like(&slots, 7, 6);
        let s = dataset_stats("test", &pairs, &sessions);
        assert_eq!(s.questions, 40);
        assert_eq!(s.domains, 1);
        assert_eq!(s.sequences, 6);
        assert!(s.turns >= 18);
        assert!(s.tables >= 2 && s.tables <= 3);
        assert_eq!(s.per_class.iter().sum::<usize>(), 40);
        assert!(s.turns_per_sequence() >= 3.0);
    }

    #[test]
    fn nested_tables_counted() {
        let db = retail_database(3);
        let slots = derive_slots(&db);
        // Generate enough that a nested template references the fact
        // table only through its subquery.
        let pairs = spider_like(&slots, 5, 40);
        let s = dataset_stats("t", &pairs, &[]);
        assert!(s.tables >= 3, "subquery tables must be counted");
    }

    #[test]
    fn paper_reference_shape() {
        let refs = paper_reference();
        assert_eq!(refs.len(), 4);
        let wikisql = &refs[0];
        assert_eq!(wikisql.questions, 80_654);
        assert_eq!(wikisql.tables, 24_241);
        let sparc = &refs[2];
        assert_eq!(sparc.sequences, 4_000);
        assert_eq!(sparc.domains, 138);
        assert!(refs[3].turns >= 30_000);
    }

    #[test]
    fn empty_stats() {
        let s = dataset_stats("empty", &[], &[]);
        assert_eq!(s.questions, 0);
        assert_eq!(s.turns_per_sequence(), 0.0);
    }
}
