//! Seeded open-loop load shapes for soak-scale serving runs.
//!
//! The closed-loop streams in [`crate::requests`] materialize a `Vec`
//! — fine at 120 requests, fatal at 10⁶. Every generator here is a
//! lazy `Iterator<Item = RequestSpec>`: state is one seeded RNG plus a
//! question pool of fixed size, so a million-request stream costs the
//! same memory as a hundred-request one. Four shapes cover the load
//! regimes ROADMAP item 5 names:
//!
//! * [`zipfian_stream`] — standalone questions with rank-`k`
//!   popularity ∝ `1/(k+1)^s`: the skew that makes interpretation
//!   caches earn their keep, tunable from uniform (`s = 0`) to
//!   hot-spot (`s ≥ 1.5`).
//! * [`flash_crowd_stream`] — a zipfian baseline interrupted by exact
//!   periodic bursts in which *every* arrival asks the crowd question
//!   (`pool[0]`, which the baseline never asks): the overload
//!   controller's natural prey, with burst windows checkable to the
//!   request.
//! * [`long_session_stream`] — a fixed number of concurrent CoSQL-
//!   shaped conversations, each at least `min_turns` long (topic
//!   shifts splice successive dialogues under one session id), turns
//!   interleaved across sessions but in order within each: sustained
//!   pressure on session affinity and dialogue state.
//! * [`tenant_skew_stream`] — a multi-tenant mix where tenant `k`
//!   receives traffic ∝ `1/(k+1)^s`: the skew that makes fair-share
//!   shedding observable.
//!
//! Everything is a pure function of `(inputs, seed)`; two iterations
//! of the same constructed stream yield identical requests.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::requests::RequestSpec;
use crate::sessions::cosql_like;
use crate::slots::SlotSet;
use crate::templates::spider_like;

/// A pool of `size` distinct-ish questions for `slots`, ordered by
/// popularity rank (index 0 = hottest under any zipfian shape). The
/// pool is the only O(size) allocation a soak stream makes.
pub fn question_pool(slots: &SlotSet, seed: u64, size: usize) -> Vec<String> {
    spider_like(slots, seed ^ 0x50a6_0011_50a6_0011, size.max(1))
        .into_iter()
        .map(|p| p.question)
        .collect()
}

/// Cumulative zipfian weights: rank `k` (0-based) weighs
/// `1/(k+1)^exponent`. `exponent = 0` is uniform.
fn zipf_cumulative(count: usize, exponent: f64) -> Vec<f64> {
    assert!(count > 0, "zipfian pool must be non-empty");
    assert!(
        exponent.is_finite() && exponent >= 0.0,
        "zipfian exponent must be finite and non-negative"
    );
    let mut cumulative = Vec::with_capacity(count);
    let mut total = 0.0;
    for rank in 1..=count {
        total += 1.0 / (rank as f64).powf(exponent);
        cumulative.push(total);
    }
    cumulative
}

/// Sample a rank from frozen cumulative weights.
fn zipf_pick(cumulative: &[f64], rng: &mut StdRng) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let u = rng.gen_range(0.0..total);
    // First rank whose cumulative weight exceeds the draw.
    cumulative
        .partition_point(|&c| c <= u)
        .min(cumulative.len() - 1)
}

/// `n` standalone requests with zipfian question popularity over
/// `pool` (rank = pool index). Lazy: holds the pool, the cumulative
/// weights, and one RNG — never a request `Vec`.
pub fn zipfian_stream(
    pool: Vec<String>,
    seed: u64,
    n: usize,
    exponent: f64,
) -> impl Iterator<Item = RequestSpec> {
    let cumulative = zipf_cumulative(pool.len(), exponent);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21bf_5a11_21bf_5a11);
    (0..n).map(move |_| RequestSpec::single(pool[zipf_pick(&cumulative, &mut rng)].clone()))
}

/// `n` standalone requests: a zipfian baseline over `pool[1..]`
/// (exponent 1.0) punctuated by exact flash crowds — request `i` asks
/// the crowd question `pool[0]` **iff** `i % period < burst_len`, and
/// the baseline never asks it, so burst membership is decidable from
/// the question text alone. Requires `pool.len() ≥ 2` and
/// `0 < burst_len < period`.
pub fn flash_crowd_stream(
    pool: Vec<String>,
    seed: u64,
    n: usize,
    period: usize,
    burst_len: usize,
) -> impl Iterator<Item = RequestSpec> {
    assert!(
        pool.len() >= 2,
        "flash crowd needs a crowd question and a baseline pool"
    );
    assert!(
        burst_len > 0 && burst_len < period,
        "burst must be non-empty and shorter than its period"
    );
    let cumulative = zipf_cumulative(pool.len() - 1, 1.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a5_4c04_f1a5_4c04);
    (0..n).map(move |i| {
        if i % period < burst_len {
            RequestSpec::single(pool[0].clone())
        } else {
            RequestSpec::single(pool[1 + zipf_pick(&cumulative, &mut rng)].clone())
        }
    })
}

/// Build one long CoSQL-shaped conversation of at least `min_turns`
/// utterances by splicing successively-seeded dialogues (each splice
/// point is a topic shift — the next dialogue opens with a fresh
/// "show …" that resets context, as CoSQL's multi-goal dialogues do).
fn long_session(slots: &SlotSet, seed: u64, min_turns: usize) -> VecDeque<String> {
    let mut turns = VecDeque::new();
    let mut chunk = 0u64;
    while turns.len() < min_turns {
        let before = turns.len();
        for session in cosql_like(slots, seed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15), 1) {
            turns.extend(session.turns.into_iter().map(|t| t.utterance));
        }
        assert!(turns.len() > before, "slot set cannot host dialogues");
        chunk += 1;
    }
    turns
}

/// `n` conversation turns drawn from `concurrent` simultaneously-live
/// long sessions. Each session id's turns appear in conversation order
/// (the affinity property); a session that runs dry is immediately
/// replaced by a fresh one with the next id, so the stream sustains
/// exactly `concurrent` live conversations for its whole length. Lazy:
/// holds `concurrent` turn queues, never the stream.
pub fn long_session_stream<'a>(
    slots: &'a SlotSet,
    seed: u64,
    n: usize,
    concurrent: usize,
    min_turns: usize,
) -> impl Iterator<Item = RequestSpec> + 'a {
    assert!(concurrent > 0, "need at least one live session");
    assert!(min_turns > 0, "sessions need turns");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e55_10f1_5e55_10f1);
    let mut active: Vec<(u64, VecDeque<String>)> = Vec::with_capacity(concurrent);
    let mut next_sid = 0u64;
    let mut emitted = 0usize;
    std::iter::from_fn(move || {
        if emitted >= n {
            return None;
        }
        emitted += 1;
        while active.len() < concurrent {
            let sid = next_sid;
            next_sid += 1;
            active.push((
                sid,
                long_session(
                    slots,
                    seed ^ sid.wrapping_mul(0x0101_0101_0101_0101),
                    min_turns,
                ),
            ));
        }
        let i = rng.gen_range(0..active.len());
        let (sid, turns) = &mut active[i];
        let sid = *sid;
        let question = turns.pop_front().expect("live sessions hold turns");
        if turns.is_empty() {
            active.swap_remove(i);
        }
        Some(RequestSpec {
            question,
            session: Some(sid),
            deadline: None,
        })
    })
}

/// `n` `(tenant_key, request)` pairs where tenant `k` (by position in
/// `tenants`) receives traffic ∝ `1/(k+1)^exponent` and each tenant's
/// questions follow a zipfian (exponent 1.0) over its own pool. The
/// per-tenant subsequences are themselves seed-deterministic, so a
/// skewed mix can be replayed tenant by tenant.
pub fn tenant_skew_stream(
    tenants: Vec<(u64, Vec<String>)>,
    seed: u64,
    n: usize,
    exponent: f64,
) -> impl Iterator<Item = (u64, RequestSpec)> {
    assert!(!tenants.is_empty(), "need at least one tenant");
    for (key, pool) in &tenants {
        assert!(
            !pool.is_empty(),
            "tenant {key:#x} has an empty question pool"
        );
    }
    let tenant_cumulative = zipf_cumulative(tenants.len(), exponent);
    let question_cumulative: Vec<Vec<f64>> = tenants
        .iter()
        .map(|(_, pool)| zipf_cumulative(pool.len(), 1.0))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e4a_5c3d_7e4a_5c3d);
    (0..n).map(move |_| {
        let t = zipf_pick(&tenant_cumulative, &mut rng);
        let q = zipf_pick(&question_cumulative[t], &mut rng);
        let (key, pool) = &tenants[t];
        (*key, RequestSpec::single(pool[q].clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::retail_database;
    use crate::slots::derive_slots;

    fn slots() -> SlotSet {
        derive_slots(&retail_database(7))
    }

    fn counts(stream: impl Iterator<Item = RequestSpec>, pool: &[String]) -> Vec<usize> {
        let mut counts = vec![0usize; pool.len()];
        for r in stream {
            let i = pool.iter().position(|q| *q == r.question).expect("pooled");
            counts[i] += 1;
        }
        counts
    }

    fn toy_pool(size: usize) -> Vec<String> {
        (0..size).map(|i| format!("q{i}")).collect()
    }

    #[test]
    fn zipfian_is_deterministic_and_seed_sensitive() {
        let pool = question_pool(&slots(), 42, 16);
        let a: Vec<RequestSpec> = zipfian_stream(pool.clone(), 42, 200, 1.0).collect();
        let b: Vec<RequestSpec> = zipfian_stream(pool.clone(), 42, 200, 1.0).collect();
        let c: Vec<RequestSpec> = zipfian_stream(pool, 43, 200, 1.0).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
        assert!(a
            .iter()
            .all(|r| r.session.is_none() && r.deadline.is_none()));
    }

    #[test]
    fn zipfian_exponent_zero_is_roughly_uniform_and_high_is_hot() {
        let pool = toy_pool(8);
        let uniform = counts(zipfian_stream(pool.clone(), 42, 8_000, 0.0), &pool);
        for &c in &uniform {
            assert!((700..1300).contains(&c), "uniform draw skewed: {uniform:?}");
        }
        let hot = counts(zipfian_stream(pool.clone(), 42, 8_000, 2.0), &pool);
        assert!(
            hot[0] > 4_000,
            "exponent 2 over 8 ranks must put a majority on rank 0: {hot:?}"
        );
        assert!(hot[0] > hot[7] * 10, "head must dwarf tail: {hot:?}");
    }

    #[test]
    fn flash_crowd_bursts_are_exact() {
        let pool = toy_pool(6);
        let stream: Vec<RequestSpec> = flash_crowd_stream(pool.clone(), 42, 500, 50, 7).collect();
        for (i, r) in stream.iter().enumerate() {
            let in_burst = i % 50 < 7;
            assert_eq!(
                r.question == pool[0],
                in_burst,
                "request {i}: crowd question iff burst window"
            );
        }
        // Deterministic, including the baseline draws.
        let again: Vec<RequestSpec> = flash_crowd_stream(pool, 42, 500, 50, 7).collect();
        assert_eq!(stream, again);
    }

    #[test]
    fn long_sessions_keep_turn_order_and_reach_min_turns() {
        let s = slots();
        let stream: Vec<RequestSpec> = long_session_stream(&s, 42, 400, 4, 12).collect();
        assert_eq!(stream.len(), 400);
        assert!(stream.iter().all(|r| r.session.is_some()));
        let mut per_session: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
        for r in &stream {
            per_session
                .entry(r.session.unwrap())
                .or_default()
                .push(r.question.as_str());
        }
        assert!(
            per_session.len() > 4,
            "sessions must retire and be replaced"
        );
        // Every session that retired before the stream ended must have
        // delivered at least min_turns; at most `concurrent` trailing
        // sessions may be cut short by the stream end.
        let short = per_session.values().filter(|t| t.len() < 12).count();
        assert!(short <= 4, "{short} sessions under min_turns");
        // Per-session turns replay the generator's conversation order.
        for (&sid, got) in &per_session {
            let want = long_session(&s, 42 ^ sid.wrapping_mul(0x0101_0101_0101_0101), 12);
            assert!(
                got.iter().zip(want.iter()).all(|(g, w)| *g == w),
                "session {sid} turns out of order"
            );
        }
        // Deterministic.
        let again: Vec<RequestSpec> = long_session_stream(&s, 42, 400, 4, 12).collect();
        assert_eq!(stream, again);
    }

    #[test]
    fn tenant_skew_favors_the_first_tenant() {
        let tenants = vec![
            (0xaaaa_u64, toy_pool(4)),
            (0xbbbb_u64, toy_pool(4)),
            (0xcccc_u64, toy_pool(4)),
        ];
        let stream: Vec<(u64, RequestSpec)> =
            tenant_skew_stream(tenants.clone(), 42, 3_000, 1.5).collect();
        let mut per_tenant: std::collections::BTreeMap<u64, usize> = Default::default();
        for (key, _) in &stream {
            *per_tenant.entry(*key).or_default() += 1;
        }
        let (a, b, c) = (
            per_tenant[&0xaaaa],
            per_tenant[&0xbbbb],
            per_tenant[&0xcccc],
        );
        assert!(a > b && b > c, "skew must follow tenant rank: {a} {b} {c}");
        assert!(a > 3_000 / 2, "rank-0 tenant must take a majority at s=1.5");
        let again: Vec<(u64, RequestSpec)> = tenant_skew_stream(tenants, 42, 3_000, 1.5).collect();
        assert_eq!(stream, again);
    }

    #[test]
    fn streams_are_lazy_enough_for_a_million_requests() {
        // Taking a prefix of a 10⁶-request stream must not cost 10⁶
        // anything — this completes instantly or the generators are
        // materializing.
        let pool = toy_pool(32);
        let head: Vec<RequestSpec> = zipfian_stream(pool.clone(), 42, 1_000_000, 1.0)
            .take(50)
            .collect();
        assert_eq!(head.len(), 50);
        let head: Vec<RequestSpec> = flash_crowd_stream(pool, 42, 1_000_000, 1000, 50)
            .take(50)
            .collect();
        assert_eq!(head.len(), 50);
        let s = slots();
        let head: Vec<RequestSpec> = long_session_stream(&s, 42, 1_000_000, 8, 10)
            .take(50)
            .collect();
        assert_eq!(head.len(), 50);
    }

    #[test]
    #[should_panic(expected = "burst")]
    fn rejects_burst_longer_than_period() {
        let _ = flash_crowd_stream(toy_pool(4), 1, 10, 5, 5);
    }
}
