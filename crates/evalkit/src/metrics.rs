//! Accuracy metrics.

use nlidb_engine::{execute, Database};
use nlidb_sqlir::Query;

/// Exact-match: identical rendered SQL. The strictest metric; used as
/// a secondary signal because semantically equal queries can differ
/// textually.
pub fn exact_match(gold: &Query, predicted: &Query) -> bool {
    gold.to_string() == predicted.to_string()
}

/// Execution accuracy: both queries run and produce the same result
/// bag (sequence when the gold query orders its output). Execution
/// errors on either side count as a miss.
pub fn execution_match(db: &Database, gold: &Query, predicted: &Query) -> bool {
    let (Ok(g), Ok(p)) = (execute(db, gold), execute(db, predicted)) else {
        return false;
    };
    if gold.order_by.is_empty() {
        g.unordered_eq(&p)
    } else {
        g.ordered_eq(&p)
    }
}

/// Per-clause component matching — Spider's partial-match idea: credit
/// a prediction for each clause it gets right, independent of the
/// others. Returns the matched fraction in `[0, 1]` over the clauses
/// the *gold* query uses (so a flat gold query doesn't penalize absent
/// GROUP BY in the prediction).
pub fn component_match(gold: &Query, predicted: &Query) -> f64 {
    let mut considered = 0usize;
    let mut matched = 0usize;
    let mut check = |g: String, p: String| {
        considered += 1;
        if g == p {
            matched += 1;
        }
    };
    // SELECT list (rendered, order-sensitive: projection order is
    // user-visible).
    check(
        gold.select
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        predicted
            .select
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    // FROM + JOIN set (order-insensitive: join order is physical).
    let from_set = |q: &Query| -> Vec<String> {
        let mut v: Vec<String> = q.from.iter().map(|f| f.to_string()).collect();
        v.extend(q.joins.iter().map(|j| j.to_string()));
        v.sort();
        v
    };
    check(from_set(gold).join(" | "), from_set(predicted).join(" | "));
    // WHERE conjunct set (order-insensitive).
    let conjuncts = |q: &Query| -> Vec<String> {
        fn split(e: &nlidb_sqlir::ast::Expr, out: &mut Vec<String>) {
            if let nlidb_sqlir::ast::Expr::Binary {
                left,
                op: nlidb_sqlir::ast::BinOp::And,
                right,
            } = e
            {
                split(left, out);
                split(right, out);
            } else {
                out.push(e.to_string());
            }
        }
        let mut v = Vec::new();
        if let Some(w) = &q.where_clause {
            split(w, &mut v);
        }
        v.sort();
        v
    };
    if gold.where_clause.is_some() || predicted.where_clause.is_some() {
        check(
            conjuncts(gold).join(" AND "),
            conjuncts(predicted).join(" AND "),
        );
    }
    if !gold.group_by.is_empty() || !predicted.group_by.is_empty() {
        check(
            gold.group_by
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            predicted
                .group_by
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if gold.having.is_some() || predicted.having.is_some() {
        check(
            gold.having
                .as_ref()
                .map(|h| h.to_string())
                .unwrap_or_default(),
            predicted
                .having
                .as_ref()
                .map(|h| h.to_string())
                .unwrap_or_default(),
        );
    }
    if !gold.order_by.is_empty() || !predicted.order_by.is_empty() {
        check(
            gold.order_by
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            predicted
                .order_by
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if gold.limit.is_some() || predicted.limit.is_some() {
        check(
            format!("{:?}", gold.limit),
            format!("{:?}", predicted.limit),
        );
    }
    if considered == 0 {
        return 1.0;
    }
    matched as f64 / considered as f64
}

/// Aggregated outcome of an evaluation run: how many questions were
/// attempted (`answered`), how many of those were right (`correct`),
/// out of how many posed (`total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Questions for which the system produced *some* query.
    pub answered: usize,
    /// Questions answered correctly (execution match).
    pub correct: usize,
    /// Questions posed.
    pub total: usize,
}

impl EvalOutcome {
    /// Record one question's outcome.
    pub fn record(&mut self, answered: bool, correct: bool) {
        self.total += 1;
        if answered {
            self.answered += 1;
        }
        if correct {
            debug_assert!(answered, "correct implies answered");
            self.correct += 1;
        }
    }

    /// Merge another outcome into this one.
    pub fn merge(&mut self, other: EvalOutcome) {
        self.answered += other.answered;
        self.correct += other.correct;
        self.total += other.total;
    }

    /// Precision: correct / answered (1.0 when nothing answered, by
    /// the convention that silence makes no errors).
    pub fn precision(&self) -> f64 {
        if self.answered == 0 {
            1.0
        } else {
            self.correct as f64 / self.answered as f64
        }
    }

    /// Recall (= end-to-end accuracy): correct / total.
    pub fn recall(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Coverage: answered / total.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.answered as f64 / self.total as f64
        }
    }
}

impl std::fmt::Display for EvalOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} correct ({} answered; P={:.2} R={:.2} F1={:.2})",
            self.correct,
            self.total,
            self.answered,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_engine::{ColumnType, TableSchema, Value};
    use nlidb_sqlir::parse_query;

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("t")
                .column("a", ColumnType::Int)
                .column("b", ColumnType::Text),
        )
        .unwrap();
        for (a, b) in [(1, "x"), (2, "y"), (3, "x")] {
            db.insert("t", vec![Value::Int(a), Value::from(b)]).unwrap();
        }
        db
    }

    #[test]
    fn exact_match_is_textual() {
        let g = parse_query("SELECT a FROM t").unwrap();
        let p1 = parse_query("SELECT a FROM t").unwrap();
        let p2 = parse_query("SELECT a FROM t WHERE a = 1 OR a > 0").unwrap();
        assert!(exact_match(&g, &p1));
        assert!(!exact_match(&g, &p2));
    }

    #[test]
    fn execution_match_tolerates_form_differences() {
        let db = db();
        let g = parse_query("SELECT a FROM t WHERE b = 'x'").unwrap();
        // Different SQL text, same denotation.
        let p = parse_query("SELECT a FROM t WHERE b IN ('x')").unwrap();
        assert!(!exact_match(&g, &p));
        assert!(execution_match(&db, &g, &p));
    }

    #[test]
    fn execution_match_respects_order_when_gold_orders() {
        let db = db();
        let g = parse_query("SELECT a FROM t ORDER BY a DESC").unwrap();
        let p = parse_query("SELECT a FROM t ORDER BY a ASC").unwrap();
        assert!(!execution_match(&db, &g, &p), "same bag, wrong order");
        let g2 = parse_query("SELECT a FROM t").unwrap();
        assert!(
            execution_match(&db, &g2, &p),
            "unordered gold accepts any order"
        );
    }

    #[test]
    fn execution_errors_are_misses() {
        let db = db();
        let g = parse_query("SELECT a FROM t").unwrap();
        let bad = parse_query("SELECT zzz FROM t").unwrap();
        assert!(!execution_match(&db, &g, &bad));
        assert!(!execution_match(&db, &bad, &g));
    }

    #[test]
    fn outcome_metrics() {
        let mut o = EvalOutcome::default();
        o.record(true, true);
        o.record(true, false);
        o.record(false, false);
        o.record(true, true);
        assert_eq!(o.total, 4);
        assert_eq!(o.answered, 3);
        assert_eq!(o.correct, 2);
        assert!((o.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((o.recall() - 0.5).abs() < 1e-12);
        assert!((o.coverage() - 0.75).abs() < 1e-12);
        assert!(o.f1() > 0.5 && o.f1() < 0.67);
    }

    #[test]
    fn outcome_edge_cases() {
        let o = EvalOutcome::default();
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 0.0);
        assert_eq!(o.f1(), 0.0);
        assert_eq!(o.coverage(), 0.0);
    }

    #[test]
    fn component_match_partial_credit() {
        let gold = parse_query(
            "SELECT name FROM t WHERE a = 1 AND b = 2 GROUP BY name ORDER BY name ASC LIMIT 5",
        )
        .unwrap();
        // Same everything except the WHERE conjuncts.
        let close = parse_query(
            "SELECT name FROM t WHERE a = 9 AND b = 2 GROUP BY name ORDER BY name ASC LIMIT 5",
        )
        .unwrap();
        let score = component_match(&gold, &close);
        assert!(score > 0.7 && score < 1.0, "{score}");
        assert_eq!(component_match(&gold, &gold), 1.0);
    }

    #[test]
    fn component_match_conjunct_order_insensitive() {
        let a = parse_query("SELECT * FROM t WHERE a = 1 AND b = 2").unwrap();
        let b = parse_query("SELECT * FROM t WHERE b = 2 AND a = 1").unwrap();
        assert_eq!(component_match(&a, &b), 1.0);
    }

    #[test]
    fn component_match_join_order_insensitive() {
        let a = parse_query("SELECT x.c FROM x JOIN y ON x.i = y.i JOIN z ON x.i = z.i").unwrap();
        let b = parse_query("SELECT x.c FROM x JOIN z ON x.i = z.i JOIN y ON x.i = y.i").unwrap();
        assert_eq!(component_match(&a, &b), 1.0);
    }

    #[test]
    fn component_match_absent_clauses_not_penalized() {
        let a = parse_query("SELECT * FROM t").unwrap();
        let b = parse_query("SELECT * FROM t").unwrap();
        assert_eq!(component_match(&a, &b), 1.0);
        // Predicted extra clause is penalized.
        let c = parse_query("SELECT * FROM t LIMIT 3").unwrap();
        assert!(component_match(&a, &c) < 1.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = EvalOutcome {
            answered: 1,
            correct: 1,
            total: 2,
        };
        a.merge(EvalOutcome {
            answered: 2,
            correct: 1,
            total: 3,
        });
        assert_eq!(
            a,
            EvalOutcome {
                answered: 3,
                correct: 2,
                total: 5
            }
        );
    }
}
