//! Minimal aligned ASCII table renderer for experiment reports.

use std::fmt;

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// New table with headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a title line printed above the table.
    pub fn title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format an f64 as a fixed two-decimal percentage cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, " {cell:width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]).title("demo");
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.to_string();
        assert!(s.starts_with("demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All rows same width.
        let widths: std::collections::HashSet<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "{s}");
        assert!(s.contains("| alpha |"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.123), "12.3%");
    }
}
