#![warn(missing_docs)]

//! # nlidb-evalkit — metrics and reporting
//!
//! §6 ("Evaluating NLID is a non-trivial task"): the kit implements
//! the standard metric set the benchmark literature converged on —
//! exact-match accuracy, *execution accuracy* (same results when run),
//! and precision/recall/F1 over answered questions (the enterprise
//! adaption framing: "increase the precision while maintaining high
//! recall") — plus the ASCII table renderer every experiment in
//! EXPERIMENTS.md prints through.

pub mod metrics;
pub mod table;

pub use metrics::{component_match, exact_match, execution_match, EvalOutcome};
pub use table::Table;
