#![warn(missing_docs)]

//! # nlidb-ml — the learning substrate, from scratch
//!
//! The survey's ML-based family (Seq2SQL, SQLNet, TypeSQL, DBPal, …)
//! rests on trainable encoders and classifiers. With no GPU and no
//! pretrained checkpoints available offline, this crate implements the
//! required pieces directly:
//!
//! * [`matrix`] — dense row-major matrices with the handful of ops the
//!   trainers need,
//! * [`mlp`] — multi-layer perceptron with ReLU hiddens, softmax
//!   cross-entropy loss, and plain SGD backprop,
//! * [`embedding`] — trainable word embeddings with hashed OOV
//!   buckets and mean-pooled sentence encoding,
//! * [`scorer`] — a bilinear question/column scorer (the
//!   column-attention mechanism of SQLNet, reduced to its trainable
//!   core),
//! * [`hmm`] — a supervised discrete hidden Markov model with Viterbi
//!   decoding (the entity-linking machinery of QUEST's hybrid
//!   pipeline).
//!
//! Everything is seeded and deterministic: the same seed reproduces
//! the same training run bit-for-bit, which the experiment harness
//! relies on.

pub mod embedding;
pub mod hmm;
pub mod matrix;
pub mod mlp;
pub mod scorer;

pub use embedding::Embeddings;
pub use hmm::Hmm;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use scorer::BilinearScorer;

/// Deterministic train/test split: every `k`-th example (by index,
/// after a seeded shuffle) goes to the test side.
pub fn train_test_split<T: Clone>(items: &[T], test_fraction: f64, seed: u64) -> (Vec<T>, Vec<T>) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut idx: Vec<usize> = (0..items.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((items.len() as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test.min(items.len()));
    (
        train_idx.iter().map(|&i| items[i].clone()).collect(),
        test_idx.iter().map(|&i| items[i].clone()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_partitions() {
        let items: Vec<i32> = (0..100).collect();
        let (tr1, te1) = train_test_split(&items, 0.2, 7);
        let (tr2, te2) = train_test_split(&items, 0.2, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 80);
        assert_eq!(te1.len(), 20);
        let mut all: Vec<i32> = tr1.iter().chain(te1.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn different_seed_different_split() {
        let items: Vec<i32> = (0..100).collect();
        let (_, te1) = train_test_split(&items, 0.2, 1);
        let (_, te2) = train_test_split(&items, 0.2, 2);
        assert_ne!(te1, te2);
    }
}
