//! Dense row-major matrices — just the operations the trainers need.

use rand::Rng;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Build from a row-major vec; `data.len()` must equal `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Row view.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · x` for a column vector `x` (len == cols).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// `selfᵀ · x` for a column vector `x` (len == rows).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// SGD step: `self -= lr * grad`.
    pub fn sgd_step(&mut self, grad: &Matrix, lr: f64) {
        debug_assert_eq!((self.rows, self.cols), (grad.rows, grad.cols));
        for (w, g) in self.data.iter_mut().zip(&grad.data) {
            *w -= lr * g;
        }
    }

    /// Rank-1 accumulation: `self += a · bᵀ` (outer product).
    pub fn add_outer(&mut self, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for (r, ar) in a.iter().enumerate() {
            let base = r * self.cols;
            for (c, bc) in b.iter().enumerate() {
                self.data[base + c] += ar * bc;
            }
        }
    }

    /// Zero all entries (gradient reset without reallocation).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Vector dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate() {
        if *x > xs[best] {
            best = i;
        }
    }
    best
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_result() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_known_result() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 8.0);
        m.clear();
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        let p = softmax(&[-1e9, 0.0]);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[0.5]), 0);
    }

    #[test]
    fn xavier_is_seeded() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(Matrix::xavier(3, 3, &mut r1), Matrix::xavier(3, 3, &mut r2));
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut w = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let g = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        w.sgd_step(&g, 0.1);
        assert!((w.get(0, 0) - 0.95).abs() < 1e-12);
        assert!((w.get(0, 1) + 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
