//! Multi-layer perceptron: ReLU hidden layers, softmax cross-entropy
//! output, plain SGD. The classifier behind intent detection, sketch
//! slot prediction, and the agent dialogue policy.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::matrix::{argmax, softmax, Matrix};

/// Hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden layer width (one hidden layer; 0 = logistic regression).
    pub hidden: usize,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
    /// L2 weight decay coefficient.
    pub l2: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            epochs: 60,
            lr: 0.05,
            seed: 42,
            l2: 1e-4,
        }
    }
}

struct Dense {
    w: Matrix, // out × in
    b: Vec<f64>,
}

impl Dense {
    fn new(inp: usize, out: usize, rng: &mut StdRng) -> Dense {
        Dense {
            w: Matrix::xavier(out, inp, rng),
            b: vec![0.0; out],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.w.matvec(x);
        for (yi, bi) in y.iter_mut().zip(&self.b) {
            *yi += bi;
        }
        y
    }
}

/// A (0- or 1-hidden-layer) perceptron classifier.
pub struct Mlp {
    hidden: Option<Dense>,
    output: Dense,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Mlp {
    /// Fresh network with seeded Xavier init.
    pub fn new(input_dim: usize, classes: usize, cfg: &MlpConfig) -> Mlp {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (hidden, out_in) = if cfg.hidden > 0 {
            (
                Some(Dense::new(input_dim, cfg.hidden, &mut rng)),
                cfg.hidden,
            )
        } else {
            (None, input_dim)
        };
        Mlp {
            hidden,
            output: Dense::new(out_in, classes, &mut rng),
            input_dim,
            classes,
        }
    }

    /// Class probabilities for one input.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax(&self.logits(x))
    }

    /// Most probable class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.logits(x))
    }

    fn logits(&self, x: &[f64]) -> Vec<f64> {
        match &self.hidden {
            Some(h) => {
                let mut a = h.forward(x);
                for v in &mut a {
                    *v = v.max(0.0); // ReLU
                }
                self.output.forward(&a)
            }
            None => self.output.forward(x),
        }
    }

    /// Train with SGD on (features, label) pairs; returns the final
    /// epoch's mean cross-entropy loss.
    pub fn train(&mut self, xs: &[Vec<f64>], ys: &[usize], cfg: &MlpConfig) -> f64 {
        assert_eq!(xs.len(), ys.len());
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut last_loss = 0.0;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                total += self.sgd_example(&xs[i], ys[i], cfg.lr, cfg.l2);
            }
            last_loss = total / xs.len().max(1) as f64;
        }
        last_loss
    }

    /// One SGD step on one example; returns its loss.
    fn sgd_example(&mut self, x: &[f64], y: usize, lr: f64, l2: f64) -> f64 {
        // Forward.
        let (hidden_pre, hidden_act): (Vec<f64>, Vec<f64>) = match &self.hidden {
            Some(h) => {
                let pre = h.forward(x);
                let act = pre.iter().map(|v| v.max(0.0)).collect();
                (pre, act)
            }
            None => (Vec::new(), Vec::new()),
        };
        let input_to_out: &[f64] = if self.hidden.is_some() {
            &hidden_act
        } else {
            x
        };
        let logits = self.output.forward(input_to_out);
        let probs = softmax(&logits);
        let loss = -probs[y].max(1e-12).ln();

        // Backward: dL/dlogit = p - onehot(y).
        let mut dlogit = probs;
        dlogit[y] -= 1.0;

        // Output layer grads.
        let dinput_out = self.output.w.matvec_t(&dlogit);
        for (r, dr) in dlogit.iter().enumerate() {
            self.output.b[r] -= lr * dr;
            let base_in = input_to_out;
            for (c, xc) in base_in.iter().enumerate() {
                let g = dr * xc + l2 * self.output.w.get(r, c);
                self.output.w.add_at(r, c, -lr * g);
            }
        }

        // Hidden layer grads.
        if let Some(h) = &mut self.hidden {
            for (r, pre) in hidden_pre.iter().enumerate() {
                let dh = if *pre > 0.0 { dinput_out[r] } else { 0.0 };
                h.b[r] -= lr * dh;
                for (c, xc) in x.iter().enumerate() {
                    let g = dh * xc + l2 * h.w.get(r, c);
                    h.w.add_at(r, c, -lr * g);
                }
            }
        }
        loss
    }

    /// Classification accuracy over a labeled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, y)| self.predict(x) == **y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable two-class problem.
    fn linear_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 10.0;
            xs.push(vec![t, 1.0]);
            ys.push(0);
            xs.push(vec![-t - 0.1, 1.0]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn learns_linear_separation_without_hidden() {
        let (xs, ys) = linear_data();
        let cfg = MlpConfig {
            hidden: 0,
            epochs: 40,
            lr: 0.1,
            seed: 1,
            l2: 0.0,
        };
        let mut m = Mlp::new(2, 2, &cfg);
        m.train(&xs, &ys, &cfg);
        assert!(m.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        let cfg = MlpConfig {
            hidden: 16,
            epochs: 3000,
            lr: 0.1,
            seed: 3,
            l2: 0.0,
        };
        let mut m = Mlp::new(2, 2, &cfg);
        m.train(&xs, &ys, &cfg);
        assert_eq!(
            m.accuracy(&xs, &ys),
            1.0,
            "XOR should be solvable with a hidden layer"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = linear_data();
        let cfg = MlpConfig {
            hidden: 8,
            epochs: 10,
            lr: 0.05,
            seed: 9,
            l2: 1e-4,
        };
        let mut a = Mlp::new(2, 2, &cfg);
        let mut b = Mlp::new(2, 2, &cfg);
        let la = a.train(&xs, &ys, &cfg);
        let lb = b.train(&xs, &ys, &cfg);
        assert_eq!(la, lb);
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn loss_decreases_with_training() {
        let (xs, ys) = linear_data();
        let cfg1 = MlpConfig {
            hidden: 8,
            epochs: 1,
            lr: 0.05,
            seed: 4,
            l2: 0.0,
        };
        let cfg50 = MlpConfig { epochs: 50, ..cfg1 };
        let mut m1 = Mlp::new(2, 2, &cfg1);
        let l1 = m1.train(&xs, &ys, &cfg1);
        let mut m50 = Mlp::new(2, 2, &cfg50);
        let l50 = m50.train(&xs, &ys, &cfg50);
        assert!(l50 < l1, "more epochs should reduce loss ({l50} vs {l1})");
    }

    #[test]
    fn proba_sums_to_one() {
        let cfg = MlpConfig::default();
        let m = Mlp::new(4, 3, &cfg);
        let p = m.predict_proba(&[0.1, -0.2, 0.3, 0.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_learning() {
        // Three clusters on a line.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let noise = (i % 5) as f64 * 0.02;
            xs.push(vec![-1.0 + noise]);
            ys.push(0);
            xs.push(vec![0.0 + noise]);
            ys.push(1);
            xs.push(vec![1.0 + noise]);
            ys.push(2);
        }
        let cfg = MlpConfig {
            hidden: 16,
            epochs: 200,
            lr: 0.1,
            seed: 5,
            l2: 0.0,
        };
        let mut m = Mlp::new(1, 3, &cfg);
        m.train(&xs, &ys, &cfg);
        assert!(m.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let cfg = MlpConfig::default();
        let m = Mlp::new(2, 2, &cfg);
        assert_eq!(m.accuracy(&[], &[]), 0.0);
    }
}
