//! Supervised discrete hidden Markov model with Viterbi decoding.
//!
//! QUEST's hybrid pipeline "first chooses the entities that are
//! relevant to the keywords in the query based on Hidden Markov
//! Models, trained on a data set of previous searches". This HMM tags
//! each query token with the schema element it refers to.

use std::collections::HashMap;

/// A discrete HMM over `n_states` hidden states and a string
/// observation vocabulary, trained from labeled sequences with
/// add-one smoothing.
#[derive(Debug, Clone)]
pub struct Hmm {
    n_states: usize,
    obs_vocab: HashMap<String, usize>,
    /// log P(state₀)
    log_init: Vec<f64>,
    /// log P(stateⱼ | stateᵢ), row-major n×n
    log_trans: Vec<f64>,
    /// log P(obs | state), per state: vocab+1 entries (last = OOV)
    log_emit: Vec<Vec<f64>>,
}

impl Hmm {
    /// Train from labeled sequences of `(observation, state)` pairs.
    /// States must be in `0..n_states`.
    pub fn train_supervised(sequences: &[Vec<(String, usize)>], n_states: usize) -> Hmm {
        let mut obs_vocab: HashMap<String, usize> = HashMap::new();
        for seq in sequences {
            for (o, _) in seq {
                let next = obs_vocab.len();
                obs_vocab.entry(o.to_lowercase()).or_insert(next);
            }
        }
        let v = obs_vocab.len();

        let mut init = vec![1.0; n_states]; // add-one smoothing
        let mut trans = vec![1.0; n_states * n_states];
        let mut emit = vec![vec![1.0; v + 1]; n_states];

        for seq in sequences {
            let mut prev: Option<usize> = None;
            for (o, s) in seq {
                assert!(*s < n_states, "state {s} out of range");
                let oi = obs_vocab[&o.to_lowercase()];
                emit[*s][oi] += 1.0;
                match prev {
                    None => init[*s] += 1.0,
                    Some(p) => trans[p * n_states + s] += 1.0,
                }
                prev = Some(*s);
            }
        }

        let log_init = normalize_log(&init);
        let mut log_trans = vec![0.0; n_states * n_states];
        for i in 0..n_states {
            let row = normalize_log(&trans[i * n_states..(i + 1) * n_states]);
            log_trans[i * n_states..(i + 1) * n_states].copy_from_slice(&row);
        }
        let log_emit = emit.iter().map(|e| normalize_log(e)).collect();

        Hmm {
            n_states,
            obs_vocab,
            log_init,
            log_trans,
            log_emit,
        }
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    fn obs_index(&self, o: &str) -> usize {
        self.obs_vocab
            .get(&o.to_lowercase())
            .copied()
            .unwrap_or(self.obs_vocab.len()) // OOV slot
    }

    /// Viterbi decode: most probable state sequence and its joint
    /// log-probability. Empty input gives an empty path.
    #[allow(clippy::needless_range_loop)] // dual-array DP indexing
    pub fn viterbi(&self, observations: &[&str]) -> (Vec<usize>, f64) {
        if observations.is_empty() {
            return (Vec::new(), 0.0);
        }
        let t_len = observations.len();
        let n = self.n_states;
        let mut delta = vec![f64::NEG_INFINITY; t_len * n];
        let mut back = vec![0usize; t_len * n];

        let o0 = self.obs_index(observations[0]);
        for s in 0..n {
            delta[s] = self.log_init[s] + self.log_emit[s][o0];
        }
        for t in 1..t_len {
            let ot = self.obs_index(observations[t]);
            for s in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut best_prev = 0;
                for p in 0..n {
                    let cand = delta[(t - 1) * n + p] + self.log_trans[p * n + s];
                    if cand > best {
                        best = cand;
                        best_prev = p;
                    }
                }
                delta[t * n + s] = best + self.log_emit[s][ot];
                back[t * n + s] = best_prev;
            }
        }
        let mut last = 0;
        let mut best = f64::NEG_INFINITY;
        for s in 0..n {
            if delta[(t_len - 1) * n + s] > best {
                best = delta[(t_len - 1) * n + s];
                last = s;
            }
        }
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = last;
        for t in (1..t_len).rev() {
            path[t - 1] = back[t * n + path[t]];
        }
        (path, best)
    }

    /// Posterior-ish confidence of a decoded path: mean per-token
    /// emission probability under the decoded states (a cheap but
    /// monotone proxy used for ranking interpretations).
    pub fn path_confidence(&self, observations: &[&str], path: &[usize]) -> f64 {
        if observations.is_empty() || observations.len() != path.len() {
            return 0.0;
        }
        let total: f64 = observations
            .iter()
            .zip(path)
            .map(|(o, s)| self.log_emit[*s][self.obs_index(o)].exp())
            .sum();
        total / observations.len() as f64
    }
}

fn normalize_log(counts: &[f64]) -> Vec<f64> {
    let sum: f64 = counts.iter().sum();
    counts.iter().map(|c| (c / sum).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// States: 0 = weather word, 1 = city word.
    fn training_data() -> Vec<Vec<(String, usize)>> {
        let seq = |words: &[(&str, usize)]| {
            words
                .iter()
                .map(|(w, s)| (w.to_string(), *s))
                .collect::<Vec<_>>()
        };
        vec![
            seq(&[("rain", 0), ("in", 0), ("paris", 1)]),
            seq(&[("sun", 0), ("in", 0), ("rome", 1)]),
            seq(&[("snow", 0), ("in", 0), ("oslo", 1)]),
            seq(&[("paris", 1), ("rain", 0)]),
        ]
    }

    #[test]
    fn viterbi_recovers_training_labels() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        let (path, logp) = hmm.viterbi(&["rain", "in", "paris"]);
        assert_eq!(path, vec![0, 0, 1]);
        assert!(logp < 0.0);
    }

    #[test]
    fn generalizes_transition_structure() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        // "sun in oslo" never appeared as a full sequence.
        let (path, _) = hmm.viterbi(&["sun", "in", "oslo"]);
        assert_eq!(path, vec![0, 0, 1]);
    }

    #[test]
    fn oov_tokens_decoded_by_context() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        let (path, _) = hmm.viterbi(&["rain", "in", "zanzibar"]);
        // OOV after "in" should still be tagged city by transitions.
        assert_eq!(path[2], 1);
    }

    #[test]
    fn empty_sequence() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        let (path, logp) = hmm.viterbi(&[]);
        assert!(path.is_empty());
        assert_eq!(logp, 0.0);
    }

    #[test]
    fn confidence_bounds_and_ordering() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        let (p1, _) = hmm.viterbi(&["rain", "in", "paris"]);
        let c_seen = hmm.path_confidence(&["rain", "in", "paris"], &p1);
        let (p2, _) = hmm.viterbi(&["blorp", "qux", "zap"]);
        let c_oov = hmm.path_confidence(&["blorp", "qux", "zap"], &p2);
        assert!((0.0..=1.0).contains(&c_seen));
        assert!(c_seen > c_oov, "in-vocab should be more confident");
        assert_eq!(hmm.path_confidence(&[], &[]), 0.0);
    }

    #[test]
    fn n_states_reported() {
        let hmm = Hmm::train_supervised(&training_data(), 2);
        assert_eq!(hmm.n_states(), 2);
    }
}
