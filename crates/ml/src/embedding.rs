//! Trainable word embeddings with hashed out-of-vocabulary buckets and
//! mean-pooled sentence encoding.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Embedding table: known words get dedicated vectors; unknown words
/// hash into a fixed set of OOV buckets so every token has *some*
/// representation (the trick DBPal-style synthetic training relies on
/// to tolerate unseen user vocabulary).
#[derive(Debug, Clone)]
pub struct Embeddings {
    /// Vector dimensionality.
    pub dim: usize,
    vocab: HashMap<String, usize>,
    vectors: Vec<Vec<f64>>,
    oov_buckets: usize,
}

impl Embeddings {
    /// Build a table over `vocab` with `oov_buckets` hash buckets.
    pub fn new<I, S>(vocab: I, dim: usize, oov_buckets: usize, seed: u64) -> Embeddings
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = HashMap::new();
        let mut vectors = Vec::new();
        let bound = (3.0 / dim as f64).sqrt();
        for w in vocab {
            let w = w.into().to_lowercase();
            if let std::collections::hash_map::Entry::Vacant(e) = map.entry(w) {
                e.insert(vectors.len());
                vectors.push((0..dim).map(|_| rng.gen_range(-bound..bound)).collect());
            }
        }
        for _ in 0..oov_buckets.max(1) {
            vectors.push((0..dim).map(|_| rng.gen_range(-bound..bound)).collect());
        }
        Embeddings {
            dim,
            vocab: map,
            vectors,
            oov_buckets: oov_buckets.max(1),
        }
    }

    /// Number of in-vocabulary words.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn index_of(&self, word: &str) -> usize {
        let w = word.to_lowercase();
        match self.vocab.get(&w) {
            Some(&i) => i,
            None => {
                // FNV-1a hash into an OOV bucket.
                let mut h: u64 = 0xcbf29ce484222325;
                for b in w.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                self.vocab.len() + (h as usize % self.oov_buckets)
            }
        }
    }

    /// Vector for one word (OOV words get a bucket vector).
    pub fn vector(&self, word: &str) -> &[f64] {
        &self.vectors[self.index_of(word)]
    }

    /// Is this word in the trained vocabulary (not an OOV bucket)?
    pub fn knows(&self, word: &str) -> bool {
        self.vocab.contains_key(&word.to_lowercase())
    }

    /// Mean-pooled encoding of a word sequence; zeros for empty input.
    pub fn encode_mean(&self, words: &[&str]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if words.is_empty() {
            return out;
        }
        for w in words {
            for (o, v) in out.iter_mut().zip(self.vector(w)) {
                *o += v;
            }
        }
        let n = words.len() as f64;
        out.iter_mut().for_each(|v| *v /= n);
        out
    }

    /// Apply a gradient to one word's vector: `vec -= lr * grad`.
    /// In mean pooling the encoder gradient distributes equally, so
    /// callers pass `grad / n_words`.
    pub fn apply_grad(&mut self, word: &str, grad: &[f64], lr: f64) {
        let i = self.index_of(word);
        for (v, g) in self.vectors[i].iter_mut().zip(grad) {
            *v -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embeddings {
        Embeddings::new(["alpha", "beta", "gamma"], 8, 4, 11)
    }

    #[test]
    fn vocab_and_oov() {
        let e = emb();
        assert_eq!(e.vocab_size(), 3);
        assert!(e.knows("alpha"));
        assert!(e.knows("ALPHA"));
        assert!(!e.knows("delta"));
        // OOV still yields a vector of the right dimension.
        assert_eq!(e.vector("delta").len(), 8);
    }

    #[test]
    fn oov_is_stable() {
        let e = emb();
        assert_eq!(e.vector("unseen"), e.vector("unseen"));
    }

    #[test]
    fn distinct_words_distinct_vectors() {
        let e = emb();
        assert_ne!(e.vector("alpha"), e.vector("beta"));
    }

    #[test]
    fn mean_encoding() {
        let e = emb();
        let m = e.encode_mean(&["alpha", "beta"]);
        for ((mi, a), b) in m.iter().zip(e.vector("alpha")).zip(e.vector("beta")) {
            assert!((mi - (a + b) / 2.0).abs() < 1e-12);
        }
        assert_eq!(e.encode_mean(&[]), vec![0.0; 8]);
    }

    #[test]
    fn seeded_determinism() {
        let a = Embeddings::new(["x", "y"], 4, 2, 7);
        let b = Embeddings::new(["x", "y"], 4, 2, 7);
        assert_eq!(a.vector("x"), b.vector("x"));
        let c = Embeddings::new(["x", "y"], 4, 2, 8);
        assert_ne!(a.vector("x"), c.vector("x"));
    }

    #[test]
    fn gradient_updates_move_vector() {
        let mut e = emb();
        let before = e.vector("alpha").to_vec();
        e.apply_grad("alpha", &[1.0; 8], 0.1);
        let after = e.vector("alpha");
        for (b, a) in before.iter().zip(after) {
            assert!((b - a - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_vocab_words_collapse() {
        let e = Embeddings::new(["dup", "dup", "other"], 4, 2, 1);
        assert_eq!(e.vocab_size(), 2);
    }
}
