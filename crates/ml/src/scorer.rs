//! Bilinear question/column scorer — SQLNet's column attention reduced
//! to its trainable core: `score(q, c) = qᵀ W c + b`, trained with
//! logistic loss on (question, column, selected?) triples.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::matrix::{sigmoid, Matrix};

/// Trainable bilinear compatibility scorer between two encodings.
#[derive(Debug, Clone)]
pub struct BilinearScorer {
    w: Matrix, // dq × dc
    bias: f64,
    dq: usize,
    dc: usize,
}

impl BilinearScorer {
    /// New scorer for query dim `dq` and candidate dim `dc`.
    pub fn new(dq: usize, dc: usize, seed: u64) -> BilinearScorer {
        let mut rng = StdRng::seed_from_u64(seed);
        BilinearScorer {
            w: Matrix::xavier(dq, dc, &mut rng),
            bias: 0.0,
            dq,
            dc,
        }
    }

    /// Raw compatibility score.
    pub fn score(&self, q: &[f64], c: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dq);
        debug_assert_eq!(c.len(), self.dc);
        let wc = self.w.matvec(c);
        q.iter().zip(&wc).map(|(a, b)| a * b).sum::<f64>() + self.bias
    }

    /// Probability the candidate is selected for this query.
    pub fn proba(&self, q: &[f64], c: &[f64]) -> f64 {
        sigmoid(self.score(q, c))
    }

    /// One SGD step of logistic loss on a labeled pair; returns the
    /// pair's loss. Also returns gradients wrt `q` and `c` so callers
    /// can propagate into embeddings.
    pub fn sgd_pair(
        &mut self,
        q: &[f64],
        c: &[f64],
        label: bool,
        lr: f64,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let p = self.proba(q, c);
        let y = if label { 1.0 } else { 0.0 };
        let loss = -(if label { p } else { 1.0 - p }).max(1e-12).ln();
        let dscore = p - y;
        // dW = dscore * q cᵀ ; dq = dscore * W c ; dc = dscore * Wᵀ q.
        let wc = self.w.matvec(c);
        let wtq = self.w.matvec_t(q);
        let dq: Vec<f64> = wc.iter().map(|v| dscore * v).collect();
        let dc: Vec<f64> = wtq.iter().map(|v| dscore * v).collect();
        let mut gw = Matrix::zeros(self.dq, self.dc);
        let scaled_q: Vec<f64> = q.iter().map(|v| dscore * v).collect();
        gw.add_outer(&scaled_q, c);
        self.w.sgd_step(&gw, lr);
        self.bias -= lr * dscore;
        (loss, dq, dc)
    }

    /// Train over triples for `epochs`; returns final mean loss.
    pub fn train(&mut self, triples: &[(Vec<f64>, Vec<f64>, bool)], epochs: usize, lr: f64) -> f64 {
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            for (q, c, y) in triples {
                total += self.sgd_pair(q, c, *y, lr).0;
            }
            last = total / triples.len().max(1) as f64;
        }
        last
    }

    /// Index of the best-scoring candidate for a query.
    pub fn best<'a>(&self, q: &[f64], candidates: impl Iterator<Item = &'a [f64]>) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, c) in candidates.enumerate() {
            let s = self.score(q, c);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alignment() {
        // Candidates are 4-dim one-hot; queries equal the correct
        // candidate's one-hot. The scorer must learn the identity
        // alignment.
        let mut triples = Vec::new();
        for i in 0..4usize {
            let mut q = vec![0.0; 4];
            q[i] = 1.0;
            for j in 0..4usize {
                let mut c = vec![0.0; 4];
                c[j] = 1.0;
                triples.push((q.clone(), c, i == j));
            }
        }
        let mut s = BilinearScorer::new(4, 4, 2);
        let loss = s.train(&triples, 500, 0.5);
        assert!(loss < 0.2, "final loss {loss}");
        for i in 0..4usize {
            let mut q = vec![0.0; 4];
            q[i] = 1.0;
            let cands: Vec<Vec<f64>> = (0..4)
                .map(|j| {
                    let mut c = vec![0.0; 4];
                    c[j] = 1.0;
                    c
                })
                .collect();
            assert_eq!(s.best(&q, cands.iter().map(|c| c.as_slice())), i);
        }
    }

    #[test]
    fn gradients_returned_match_shapes() {
        let mut s = BilinearScorer::new(3, 5, 1);
        let (loss, dq, dc) = s.sgd_pair(&[0.1, 0.2, 0.3], &[0.0; 5], true, 0.1);
        assert!(loss > 0.0);
        assert_eq!(dq.len(), 3);
        assert_eq!(dc.len(), 5);
    }

    #[test]
    fn deterministic_training() {
        let triples = vec![(vec![1.0, 0.0], vec![0.0, 1.0], true)];
        let mut a = BilinearScorer::new(2, 2, 3);
        let mut b = BilinearScorer::new(2, 2, 3);
        assert_eq!(a.train(&triples, 10, 0.1), b.train(&triples, 10, 0.1));
    }

    #[test]
    fn proba_in_unit_interval() {
        let s = BilinearScorer::new(2, 2, 4);
        let p = s.proba(&[10.0, -10.0], &[5.0, 5.0]);
        assert!((0.0..=1.0).contains(&p));
    }
}
